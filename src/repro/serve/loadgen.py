"""Load generation and SLO measurement for the solver server.

Three canonical arrival disciplines, all on the modeled-device clock:

* **Open loop** (``mode="open"``): a Poisson process — exponential
  inter-arrival gaps at ``rate_rps`` requests per modeled second,
  independent of service progress.  This is the discipline that
  exposes overload: arrivals keep coming whether or not the server
  keeps up, so admission control and deadline shedding actually fire.
* **Closed loop** (``mode="closed"``): ``concurrency`` clients, each
  submitting its next request when its previous one completes (plus
  ``think_s``).  Arrival pressure self-limits to service capacity, so
  this measures best-case latency rather than overload behaviour.
* **Correlated streams** (:func:`run_stream_loadgen`): ``n_tenants``
  independent solve sessions, each marching its *own* drifting matrix
  (a seeded :class:`~repro.streams.DriftSchedule`) and chaining each
  step's solution into the next request's warm start ``x0`` — the
  serve-path twin of :class:`repro.streams.SolveSession`.  Requests
  within a tenant are temporally correlated (completion-driven, plus
  ``period_s``), which is exactly the workload shape the amortization
  levers target and Poisson traffic cannot express.

:func:`run_loadgen` drives a :class:`~repro.serve.scheduler.
ServeScheduler` with the generated workload and returns its
:class:`~repro.serve.scheduler.ServeReport` — throughput, goodput
under deadline, batch occupancy, and p50/p95/p99 latency on both the
wall clock and the modeled clock (:meth:`ServeReport.slo_table`
renders the CI summary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix
from ..streams.drift import DriftSchedule
from .scheduler import ServeReport, ServeScheduler

__all__ = ["LoadSpec", "StreamSpec", "poisson_arrivals", "run_loadgen",
           "run_stream_loadgen"]


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation scenario.

    ``deadline_s`` is *relative*: each request's absolute deadline is
    its arrival time plus this.  ``rate_rps`` is ignored in closed-loop
    mode (arrivals are completion-driven); ``concurrency`` and
    ``think_s`` are ignored in open-loop mode.
    """

    n_requests: int
    rate_rps: float = 100.0
    mode: str = "open"
    concurrency: int = 4
    think_s: float = 0.0
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError("n_requests must be positive")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', "
                             f"got {self.mode!r}")
        if self.mode == "open" and self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be positive")
        if self.think_s < 0:
            raise ValueError("think_s must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


@dataclass(frozen=True)
class StreamSpec:
    """One correlated-stream (per-tenant session) scenario.

    Each of ``n_tenants`` clients owns a base matrix and a seeded
    :class:`~repro.streams.DriftSchedule` (``drift_magnitude`` steady,
    optional refactor-scale shock every ``shock_every`` drifted steps),
    submits ``steps_per_tenant`` requests, and — when ``warm_start``
    is on — passes each completed step's solution as the next
    request's ``x0``.  Arrivals are completion-driven with a
    ``period_s`` gap, so a tenant's requests are serially correlated
    the way time-stepping clients are.
    """

    n_tenants: int
    steps_per_tenant: int
    period_s: float = 0.0
    drift_magnitude: float = 1e-6
    shock_every: int | None = None
    warm_start: bool = True
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self):
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be positive")
        if self.steps_per_tenant < 1:
            raise ValueError("steps_per_tenant must be positive")
        if self.period_s < 0:
            raise ValueError("period_s must be non-negative")
        if self.drift_magnitude < 0:
            raise ValueError("drift_magnitude must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    @property
    def n_requests(self) -> int:
        return self.n_tenants * self.steps_per_tenant


def poisson_arrivals(rate_rps: float, n: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Cumulative arrival times of a Poisson process (modeled s)."""
    gaps = rng.exponential(1.0 / rate_rps, size=n)
    return np.cumsum(gaps)


def _make_request(matrices: list[CSRMatrix], i: int,
                  rng: np.random.Generator) -> tuple[CSRMatrix, np.ndarray]:
    a = matrices[int(rng.integers(len(matrices)))]
    b = rng.standard_normal(a.n_rows)
    return a, b


def run_loadgen(scheduler: ServeScheduler, matrices,
                spec: LoadSpec) -> ServeReport:
    """Generate the workload of *spec* over *matrices*, serve it, and
    return the scheduler's report.

    The matrix for each request is drawn uniformly (seeded), the
    right-hand side is standard Gaussian — fixed ``seed`` makes the
    whole run reproducible, which the benchmarks' continuous-versus-
    flush comparisons rely on.
    """
    matrices = list(matrices)
    if not matrices:
        raise ValueError("need at least one matrix")
    rng = np.random.default_rng(spec.seed)

    if spec.mode == "open":
        arrivals = poisson_arrivals(spec.rate_rps, spec.n_requests, rng)
        for i, t in enumerate(arrivals):
            a, b = _make_request(matrices, i, rng)
            deadline = (float(t) + spec.deadline_s
                        if spec.deadline_s is not None else None)
            scheduler.submit(a, b, tag=f"open-{i}", arrival_s=float(t),
                             deadline_s=deadline)
        return scheduler.run()

    # Closed loop: prime one request per client, then each completion
    # (at dispatch granularity — a column's outcome is visible when its
    # block finishes) triggers that client's next submission.
    state = {"submitted": 0}
    prev_hook = scheduler.on_complete

    def submit_next(t_arrival: float) -> None:
        i = state["submitted"]
        state["submitted"] += 1
        a, b = _make_request(matrices, i, rng)
        deadline = (t_arrival + spec.deadline_s
                    if spec.deadline_s is not None else None)
        scheduler.submit(a, b, tag=f"closed-{i}", arrival_s=t_arrival,
                         deadline_s=deadline)

    def on_complete(outcome) -> None:
        if prev_hook is not None:
            prev_hook(outcome)
        if state["submitted"] >= spec.n_requests:
            return
        t_done = (outcome.t_complete if outcome.t_complete is not None
                  else scheduler.now_s)
        submit_next(t_done + spec.think_s)

    scheduler.on_complete = on_complete
    try:
        for _ in range(min(spec.concurrency, spec.n_requests)):
            submit_next(0.0)
        return scheduler.run()
    finally:
        scheduler.on_complete = prev_hook


class _Tenant:
    """One stream client: its drifting matrix, fixed RHS, and the
    last completed solution (the next request's warm start)."""

    __slots__ = ("a", "b", "drift", "step", "x_prev")

    def __init__(self, a: CSRMatrix, b: np.ndarray,
                 drift: DriftSchedule):
        self.a = a
        self.b = b
        self.drift = drift
        self.step = 0
        self.x_prev: np.ndarray | None = None


def run_stream_loadgen(scheduler: ServeScheduler, matrices,
                       spec: StreamSpec) -> ServeReport:
    """Serve ``n_tenants`` correlated solve streams and return the
    scheduler's report.

    Tenant ``t`` starts from ``matrices[t % len(matrices)]`` with a
    standard-Gaussian right-hand side and a tenant-seeded drift
    schedule; each completion triggers that tenant's next submission
    ``period_s`` later, carrying the completed solution as ``x0``
    (when ``warm_start``).  Identical seeds replay identical streams.
    """
    matrices = list(matrices)
    if not matrices:
        raise ValueError("need at least one matrix")
    rng = np.random.default_rng(spec.seed)
    tenants = [
        _Tenant(matrices[t % len(matrices)],
                rng.standard_normal(matrices[t % len(matrices)].n_rows),
                DriftSchedule(seed=spec.seed + 104729 * (t + 1),
                              magnitude=spec.drift_magnitude,
                              shock_every=spec.shock_every))
        for t in range(spec.n_tenants)
    ]
    owner: dict[int, int] = {}
    prev_hook = scheduler.on_complete

    def submit_step(t_idx: int, t_arrival: float) -> None:
        ten = tenants[t_idx]
        ten.step += 1
        ten.a = ten.drift.evolve(ten.a, ten.step)
        deadline = (t_arrival + spec.deadline_s
                    if spec.deadline_s is not None else None)
        rid = scheduler.submit(
            ten.a, ten.b, tag=f"tenant{t_idx}-s{ten.step}",
            arrival_s=t_arrival, deadline_s=deadline,
            x0=ten.x_prev if spec.warm_start else None)
        owner[rid] = t_idx

    def on_complete(outcome) -> None:
        if prev_hook is not None:
            prev_hook(outcome)
        t_idx = owner.pop(outcome.req_id, None)
        if t_idx is None:
            return
        ten = tenants[t_idx]
        if outcome.result is not None and outcome.result.converged:
            ten.x_prev = outcome.result.x
        if ten.step >= spec.steps_per_tenant:
            return
        t_done = (outcome.t_complete if outcome.t_complete is not None
                  else scheduler.now_s)
        submit_step(t_idx, t_done + spec.period_s)

    scheduler.on_complete = on_complete
    try:
        for t_idx in range(spec.n_tenants):
            submit_step(t_idx, 0.0)
        return scheduler.run()
    finally:
        scheduler.on_complete = prev_hook
