"""Bounded request queue with admission control (backpressure).

The queue sheds load *at the door* instead of letting an unbounded
backlog destroy every request's latency.  Two admission predicates,
both optional:

* ``max_depth`` — a hard cap on queued requests (classic bounded
  queue).
* ``max_backlog_s`` — a cap on the queue's **modeled backlog**: the sum
  of estimated modeled-device seconds of everything already queued
  (the newcomer's estimated *wait*, not its own service time — an
  empty queue always admits).  Estimates come from the scheduler's
  per-fingerprint EWMA of observed service times, falling back to the
  machine model's
  :func:`~repro.machine.kernels.estimate_request_seconds` a-priori
  price, so backpressure reacts to *work*, not just count — ten tiny
  systems are cheaper than two huge ones.

A rejected push raises :class:`~repro.errors.QueueFullError` with the
failed predicate in ``reason`` (``"queue_depth"`` /
``"backlog_seconds"``); :meth:`RequestQueue.try_push` returns the
reason instead for schedulers that record sheds as outcomes rather
than propagate exceptions (the event-driven loadgen path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import QueueFullError
from .request import ServeRequest

__all__ = ["AdmissionPolicy", "RequestQueue"]

#: Shed reasons the serving layer emits (trace ``shed`` events and
#: :class:`~repro.serve.request.ServeOutcome.shed_reason` use these).
SHED_REASONS = ("queue_depth", "backlog_seconds", "deadline_queued",
                "cancelled")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Admission-control knobs (``None`` disables a predicate).

    ``unbounded()`` — accept everything — is what the degenerate
    flush-compat path uses.
    """

    max_depth: int | None = None
    max_backlog_s: float | None = None

    def __post_init__(self):
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be positive or None")
        if self.max_backlog_s is not None and self.max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive or None")

    @classmethod
    def unbounded(cls) -> "AdmissionPolicy":
        return cls(max_depth=None, max_backlog_s=None)


class RequestQueue:
    """FIFO-per-priority queue of :class:`ServeRequest`, grouped by
    matrix fingerprint, guarded by an :class:`AdmissionPolicy`.

    Parameters
    ----------
    policy:
        Admission predicates; unbounded when ``None``.
    estimator:
        ``estimator(request) -> float`` returning the request's
        estimated modeled service seconds (used for the backlog
        predicate and exposed via :meth:`backlog_seconds`).  A constant
        zero when ``None`` (depth-only admission).
    price_always:
        Run the estimator even when no ``max_backlog_s`` bound is set,
        so :meth:`backlog_seconds` stays meaningful for consumers other
        than admission control (the scheduler's overload-brownout
        policy watches it).
    """

    def __init__(self, policy: AdmissionPolicy | None = None,
                 estimator: Callable[[ServeRequest], float] | None = None,
                 *, price_always: bool = False):
        self.policy = policy if policy is not None \
            else AdmissionPolicy.unbounded()
        self._estimator = estimator
        self._price_always = bool(price_always)
        self._items: dict[int, ServeRequest] = {}
        self._estimates: dict[int, float] = {}
        self._backlog_s = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, req_id: int) -> bool:
        return req_id in self._items

    @property
    def depth(self) -> int:
        return len(self._items)

    def backlog_seconds(self) -> float:
        """Estimated modeled seconds of work currently queued."""
        return self._backlog_s

    # ------------------------------------------------------------------
    def admission_reason(self, request: ServeRequest) -> str | None:
        """The predicate that would shed *request*, or ``None`` if it
        would be admitted (pure check, no mutation)."""
        pol = self.policy
        if pol.max_depth is not None and len(self._items) >= pol.max_depth:
            return "queue_depth"
        # Backlog prices the work *ahead of* the newcomer, not the
        # newcomer itself — an empty queue always admits, however
        # expensive the request (it could never be served otherwise).
        if (pol.max_backlog_s is not None
                and self._backlog_s > pol.max_backlog_s):
            return "backlog_seconds"
        return None

    def try_push(self, request: ServeRequest) -> str | None:
        """Admit *request* or return the shed reason (no exception)."""
        reason = self.admission_reason(request)
        if reason is not None:
            return reason
        est = self._estimate(request)
        self._items[request.req_id] = request
        self._estimates[request.req_id] = est
        self._backlog_s += est
        return None

    def push(self, request: ServeRequest) -> None:
        """Admit *request* or raise :class:`QueueFullError` carrying the
        failed predicate in ``reason`` — the synchronous backpressure
        path interactive callers see."""
        reason = self.try_push(request)
        if reason is not None:
            raise QueueFullError(reason)

    def _estimate(self, request: ServeRequest) -> float:
        # Only price requests when something actually consumes the
        # estimate (a backlog bound, or a price_always consumer like
        # brownout) — the estimator may factorize a never-seen matrix,
        # which must not happen on the unbounded fast path.
        if self._estimator is None or (self.policy.max_backlog_s is None
                                       and not self._price_always):
            return 0.0
        return float(self._estimator(request))

    # ------------------------------------------------------------------
    def remove(self, req_id: int) -> ServeRequest | None:
        """Remove and return a queued request (``None`` if not queued)."""
        req = self._items.pop(req_id, None)
        if req is not None:
            self._backlog_s -= self._estimates.pop(req.req_id, 0.0)
            if not self._items:
                self._backlog_s = 0.0  # kill float drift at empty
        return req

    def expire(self, now_s: float) -> list[ServeRequest]:
        """Remove every queued request whose deadline is at or before
        *now_s* — they can no longer be served in time and are shed
        (``deadline_queued``) without ever holding a slot."""
        dead = [r for r in self._items.values()
                if r.deadline_s is not None and r.deadline_s <= now_s]
        for r in dead:
            self.remove(r.req_id)
        return dead

    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Distinct fingerprints queued, ordered by their oldest
        request's arrival (the dispatch loop serves groups FIFO)."""
        heads: dict[str, float] = {}
        for r in self._items.values():
            t = heads.get(r.fingerprint)
            if t is None or r.arrival_s < t:
                heads[r.fingerprint] = r.arrival_s
        return sorted(heads, key=heads.__getitem__)

    def group(self, fingerprint: str) -> list[ServeRequest]:
        """Queued requests for *fingerprint* in dispatch order
        (priority, then arrival)."""
        members = [r for r in self._items.values()
                   if r.fingerprint == fingerprint]
        members.sort(key=ServeRequest.sort_key)
        return members

    def oldest_arrival(self, fingerprint: str) -> float | None:
        """Arrival time of the group's oldest member (batching-window
        max-wait is measured from here)."""
        times = [r.arrival_s for r in self._items.values()
                 if r.fingerprint == fingerprint]
        return min(times) if times else None

    def take(self, requests: Iterable[ServeRequest]) -> None:
        """Remove *requests* from the queue (they are being dispatched)."""
        for r in requests:
            self.remove(r.req_id)

    def next_deadline(self) -> float | None:
        """Earliest queued deadline (the dispatch loop's next expiry
        event), or ``None``."""
        deadlines = [r.deadline_s for r in self._items.values()
                     if r.deadline_s is not None]
        return min(deadlines) if deadlines else None
