"""The 17 application categories of the paper's Figure 9."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Category", "CATEGORIES"]


@dataclass(frozen=True)
class Category:
    """One application domain of the evaluation dataset.

    Attributes
    ----------
    key:
        Stable identifier used by the registry and the Figure 9 bench.
    label:
        Display name exactly as in the paper's figure.
    note:
        What characterizes matrices from this domain — and therefore how
        the synthetic generator imitates them.
    """

    key: str
    label: str
    note: str


CATEGORIES: tuple[Category, ...] = (
    Category("2d3d", "2D/3D",
             "Constant/variable-coefficient Poisson stencils on regular "
             "2-D and 3-D grids."),
    Category("acoustics", "acoustics",
             "Shifted Laplacians (Helmholtz-like with positive shift): "
             "stencil plus mass term, near-uniform magnitudes."),
    Category("circuit", "circuit simulation",
             "Conductance-network Laplacians with log-uniform value "
             "spread over many decades; many negligible couplings."),
    Category("cfd", "computational fluid dynamics",
             "Anisotropic diffusion stencils: one grid direction couples "
             "much more weakly, so dropping it decouples grid lines."),
    Category("graphics", "computer graphics/vision",
             "Mesh-style Laplacians (8-neighbor stencils) with random "
             "positive cotangent-like weights."),
    Category("counter", "counter-example",
             "Adversarial near-uniform magnitudes: magnitude-based "
             "dropping has no signal to exploit."),
    Category("dup_model_reduction", "duplicate model reduction",
             "Banded Gramian-like matrices, exponentially decaying "
             "off-diagonals (variant A)."),
    Category("dup_optimization", "duplicate optimization",
             "Normal-equation-like random SPD systems (variant A)."),
    Category("economic", "economic",
             "Input–output models: sparse random coupling with power-law "
             "magnitudes and strong diagonal."),
    Category("electromagnetics", "electromagnetics",
             "Wider-band stencils with mixed-sign couplings kept SPD by "
             "dominance."),
    Category("materials", "materials",
             "Lattice models with two-phase high-contrast coefficients."),
    Category("model_reduction", "model reduction",
             "Banded Gramian-like matrices, exponentially decaying "
             "off-diagonals (variant B)."),
    Category("optimization", "optimization",
             "Normal-equation-like random SPD systems (variant B)."),
    Category("random2d3d", "random 2D/3D",
             "Random geometric-graph Laplacians on scattered points."),
    Category("statmath", "statistical/mathematical",
             "Covariance-like banded matrices with exponential decay "
             "A_ij = exp(-|i-j|/l)."),
    Category("structural", "structural",
             "FEM plane-stress-like 9-point stencils with stiff/soft "
             "element mix."),
    Category("thermal", "thermal",
             "Heat-conduction stencils with smoothly varying "
             "conductivity fields."),
)

_BY_KEY = {c.key: c for c in CATEGORIES}


def get_category(key: str) -> Category:
    """Look up a category by key."""
    return _BY_KEY[key]
