"""Per-category SPD matrix generators.

Every generator is deterministic in ``(n, seed)`` and returns a canonical
float64 :class:`~repro.sparse.csr.CSRMatrix` that is symmetric positive
definite by construction (graph-Laplacian form ``D − W`` with
``D = rowsum(W)·(1+δ) + shift``, strictly diagonally dominant with
positive diagonal).

The categories differ in exactly the knobs the paper's analysis keys on —
see :mod:`~repro.datasets.categories` for the mapping rationale.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import DatasetError
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix

__all__ = ["GENERATORS", "generate"]


# ----------------------------------------------------------------------
# shared assembly helpers
# ----------------------------------------------------------------------

def _spd_from_edges(rows: np.ndarray, cols: np.ndarray,
                    weights: np.ndarray, n: int, *,
                    dominance: float = 0.02, shift: float = 0.0,
                    signs: np.ndarray | None = None) -> CSRMatrix:
    """Assemble ``A = D − W`` (Laplacian-like) from undirected edges.

    Parameters
    ----------
    rows, cols, weights:
        Edge list with *positive* weights; each edge contributes the
        off-diagonal value ``−w`` (or ``sign·w`` when *signs* given) at
        both ``(i, j)`` and ``(j, i)``.
    dominance:
        Diagonal excess δ: ``D_ii = Σ|w| · (1+δ) + shift``.  Strictly
        positive δ makes the matrix strictly diagonally dominant with
        positive diagonal, hence SPD.
    shift:
        Additive diagonal shift (mass term).
    """
    if np.any(weights <= 0):
        raise DatasetError("edge weights must be positive")
    offvals = -weights if signs is None else signs * weights
    all_rows = np.concatenate([rows, cols, np.arange(n)])
    all_cols = np.concatenate([cols, rows, np.arange(n)])
    all_vals = np.concatenate([offvals, offvals, np.zeros(n)])
    a = COOMatrix(all_rows, all_cols, all_vals, (n, n), check=False).tocsr()
    rid = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    off = rid != a.indices
    row_abs = np.zeros(n, dtype=np.float64)
    np.add.at(row_abs, rid[off], np.abs(a.data[off]))
    diag = row_abs * (1.0 + dominance) + shift
    # Isolated vertices (random-graph generators can produce them) get a
    # unit diagonal: real SPD collections never carry near-zero pivots,
    # and a 1e-12 pivot would explode the condition-number proxy.
    diag[diag < 1e-10] = 1.0
    dmask = rid == a.indices
    a.data[dmask] = diag[rid[dmask]]
    return a


def _grid_edges_2d(nx: int, ny: int,
                   offsets: tuple[tuple[int, int], ...] = ((1, 0), (0, 1))
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edges of an ``nx × ny`` grid for the given neighbor offsets.

    Returns ``(i, j, offset_id)`` arrays; node index is ``x·ny + y``.
    """
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    xs = xs.ravel()
    ys = ys.ravel()
    out_i, out_j, out_k = [], [], []
    for k, (dx, dy) in enumerate(offsets):
        ok = (xs + dx < nx) & (xs + dx >= 0) & (ys + dy < ny) & (ys + dy >= 0)
        i = xs[ok] * ny + ys[ok]
        j = (xs[ok] + dx) * ny + (ys[ok] + dy)
        out_i.append(i)
        out_j.append(j)
        out_k.append(np.full(i.shape[0], k, dtype=np.int64))
    return (np.concatenate(out_i), np.concatenate(out_j),
            np.concatenate(out_k))


def _grid_edges_3d(nx: int, ny: int, nz: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-neighbor edges of an ``nx × ny × nz`` lattice."""
    xs, ys, zs = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz),
                             indexing="ij")
    xs, ys, zs = xs.ravel(), ys.ravel(), zs.ravel()
    out_i, out_j = [], []
    for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
        ok = (xs + dx < nx) & (ys + dy < ny) & (zs + dz < nz)
        i = (xs[ok] * ny + ys[ok]) * nz + zs[ok]
        j = ((xs[ok] + dx) * ny + (ys[ok] + dy)) * nz + (zs[ok] + dz)
        out_i.append(i)
        out_j.append(j)
    return np.concatenate(out_i), np.concatenate(out_j)


def _weaken_fronts(i: np.ndarray, j: np.ndarray, w: np.ndarray,
                   coord_sum: np.ndarray, rng: np.random.Generator, *,
                   max_fronts: int = 4, factor: float = 1e-6,
                   zero_prob: float = 0.22) -> np.ndarray:
    """Multiply by *factor* the weights of edges crossing random fronts.

    A *front* is a level set of the node coordinate sum (an anti-diagonal
    plane of the grid); edges crossing it model physically weak interfaces
    — material boundaries, contact surfaces, weakly coupled subsystems.
    Every dependence chain of the lower-triangular DAG advances the
    coordinate sum monotonically, so once a front's edges are sparsified
    away the wavefront count genuinely drops (the chains are severed, not
    rerouted).  This is the structural mechanism behind the wavefront
    reductions the paper observes on irregular application matrices.

    The number of fronts is drawn in ``[0, max_fronts]`` so the suite
    contains both reducible and irreducible systems.
    """
    s_max = float(coord_sum.max(initial=0))
    if s_max <= 2:
        return w
    if rng.random() < zero_prob:
        return w
    n_fronts = int(rng.integers(1, max_fronts + 1))
    w = w.copy()
    for _ in range(n_fronts):
        c = rng.uniform(0.2, 0.9) * s_max
        strength = factor * 10.0 ** rng.uniform(0.0, 1.5)
        crossing = (coord_sum[i] < c) != (coord_sum[j] < c)
        w[crossing] *= strength
    return w


def _jacobi_scaled(a: CSRMatrix) -> CSRMatrix:
    """Symmetric Jacobi scaling ``D^{-1/2} A D^{-1/2}`` (unit diagonal).

    SuiteSparse application matrices are commonly pre-scaled; scaling
    decorrelates "row is weak" from "row's entries are globally small",
    which keeps the magnitude-based drop budget spread across rows
    instead of wiping out the weakest row — matching the regime in which
    the paper's safety indicator operates.
    """
    d = a.diagonal().astype(np.float64)
    inv_sqrt = 1.0 / np.sqrt(d)
    rid = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths())
    data = a.data * inv_sqrt[rid] * inv_sqrt[a.indices]
    return CSRMatrix(a.indptr, a.indices, data, a.shape, check=False)


def _square_side(n: int) -> int:
    return max(2, int(round(np.sqrt(n))))


def _cube_side(n: int) -> int:
    return max(2, int(round(n ** (1.0 / 3.0))))


# ----------------------------------------------------------------------
# category generators
# ----------------------------------------------------------------------

def gen_2d3d(n: int, seed: int, *, dim: int = 2,
             coeff_sigma: float = 1.8) -> CSRMatrix:
    """Variable-coefficient Poisson stencil on a 2-D or 3-D grid."""
    rng = np.random.default_rng(seed)
    if dim == 2:
        side = _square_side(n)
        nn = side * side
        i, j, _ = _grid_edges_2d(side, side)
    elif dim == 3:
        side = _cube_side(n)
        nn = side ** 3
        i, j = _grid_edges_3d(side, side, side)
    else:
        raise DatasetError(f"dim must be 2 or 3, got {dim}")
    w = rng.lognormal(mean=0.0, sigma=coeff_sigma, size=i.shape[0])
    if dim == 2:
        coord_sum = np.arange(nn) // side + np.arange(nn) % side
    else:
        idx = np.arange(nn)
        coord_sum = idx // (side * side) + (idx // side) % side + idx % side
    w = _weaken_fronts(i, j, w, coord_sum, rng)
    return _jacobi_scaled(_spd_from_edges(i, j, w, nn, dominance=0.02))


def gen_acoustics(n: int, seed: int, *, shift: float = 0.15) -> CSRMatrix:
    """Positive-shifted Laplacian (damped Helmholtz): stencil + mass."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    i, j, _ = _grid_edges_2d(side, side)
    w = 1.0 + 0.25 * rng.standard_normal(i.shape[0])
    w = np.abs(w) + 1e-3
    coord_sum = np.arange(side * side) // side + np.arange(side * side) % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _jacobi_scaled(_spd_from_edges(i, j, w, side * side,
                                          dominance=0.0, shift=shift))


def gen_circuit(n: int, seed: int, *, decades: float = 6.0,
                avg_degree: float = 4.0) -> CSRMatrix:
    """Conductance network with log-uniform weight spread."""
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    keep = i != j
    i, j = i[keep], j[keep]
    w = 10.0 ** rng.uniform(-decades / 2, decades / 2, size=i.shape[0])
    # Ground leaks on 5% of the nodes keep the system well-posed.
    leak = np.zeros(n)
    picks = rng.choice(n, size=max(1, n // 20), replace=False)
    leak[picks] = 10.0 ** rng.uniform(-1, 1, size=picks.shape[0])
    a = _spd_from_edges(i, j, w, n, dominance=0.01)
    rid = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    dmask = rid == a.indices
    a.data[dmask] += leak[rid[dmask]]
    return a


def gen_cfd(n: int, seed: int, *, eps: float = 0.03) -> CSRMatrix:
    """Anisotropic diffusion: x-direction couples with strength *eps*."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    i, j, k = _grid_edges_2d(side, side)
    w = np.where(k == 0, eps, 1.0) * (
        1.0 + 0.02 * np.abs(rng.standard_normal(i.shape[0])))
    coord_sum = np.arange(side * side) // side + np.arange(side * side) % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _jacobi_scaled(_spd_from_edges(i, j, w, side * side,
                                          dominance=0.01))


def gen_graphics(n: int, seed: int, *, sigma: float = 2.0) -> CSRMatrix:
    """Mesh-like 8-neighbor Laplacian with cotangent-style random weights."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    i, j, k = _grid_edges_2d(side, side,
                             offsets=((1, 0), (0, 1), (1, 1), (1, -1)))
    w = rng.lognormal(mean=0.0, sigma=sigma, size=i.shape[0])
    # Diagonal (k>=2) couplings are systematically weaker, as in cotan
    # weights of near-right triangles.
    w = np.where(k >= 2, 0.3 * w, w)
    coord_sum = np.arange(side * side) // side + np.arange(side * side) % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _jacobi_scaled(_spd_from_edges(i, j, w, side * side,
                                          dominance=0.01))


def gen_counter(n: int, seed: int) -> CSRMatrix:
    """Adversarial near-uniform magnitudes: no signal for dropping."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    i, j, _ = _grid_edges_2d(side, side)
    w = 1.0 + 1e-6 * rng.standard_normal(i.shape[0])
    return _spd_from_edges(i, j, np.abs(w), side * side, dominance=0.005)


def gen_model_reduction(n: int, seed: int, *, band: int = 14,
                        alpha: float = 0.35) -> CSRMatrix:
    """Banded Gramian-like matrix with exponentially decaying bands."""
    rng = np.random.default_rng(seed)
    rows_all, cols_all, w_all = [], [], []
    for k in range(1, band + 1):
        length = n - k
        if length <= 0:
            break
        r = np.arange(length, dtype=np.int64)
        # Irregular band: reduced models are not dense-banded, and a full
        # band would make ILU(0) exact (trivializing the baseline).
        keep = rng.random(length) < (1.0 if k == 1 else 0.45)
        r = r[keep]
        w = np.exp(-alpha * k) * (1.0 + 0.4 * np.abs(
            rng.standard_normal(r.shape[0])))
        rows_all.append(r)
        cols_all.append(r + k)
        w_all.append(w)
    # Long-range correction couplings: projected reduced models are not
    # purely banded; the scattered terms defeat level-of-fill closure so
    # moderate-K ILU stays genuinely incomplete.
    m_extra = max(1, n // 3)
    ii = rng.integers(0, n, size=m_extra)
    jj = rng.integers(0, n, size=m_extra)
    keep = np.abs(ii - jj) > band
    rows_all.append(ii[keep])
    cols_all.append(jj[keep])
    w_all.append(0.05 * rng.lognormal(0.0, 0.5, size=int(keep.sum())))
    i = np.concatenate(rows_all)
    j = np.concatenate(cols_all)
    w = np.concatenate(w_all)
    # Weakly coupled subsystem blocks: edges crossing block boundaries are
    # orders of magnitude weaker — the classic reduced-model structure.
    w = _weaken_fronts(i, j, w, np.arange(n, dtype=np.float64), rng,
                       max_fronts=4)
    return _spd_from_edges(i, j, w, n, dominance=0.005)


def gen_optimization(n: int, seed: int, *, density: float = 0.004,
                     spread: float = 1.0) -> CSRMatrix:
    """Normal-equation-like random SPD system."""
    rng = np.random.default_rng(seed)
    m = max(n, int(density * n * n / 2))
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    keep = i != j
    i, j = i[keep], j[keep]
    w = rng.lognormal(mean=0.0, sigma=spread, size=i.shape[0])
    return _spd_from_edges(i, j, w, n, dominance=0.02)


def gen_economic(n: int, seed: int, *, tail: float = 1.5) -> CSRMatrix:
    """Input–output model: power-law coupling magnitudes, strong diagonal."""
    rng = np.random.default_rng(seed)
    m = 3 * n
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    keep = i != j
    i, j = i[keep], j[keep]
    w = rng.pareto(tail, size=i.shape[0]) + 1e-3
    return _spd_from_edges(i, j, w, n, dominance=0.05)


def gen_electromagnetics(n: int, seed: int) -> CSRMatrix:
    """Curl-curl-like wide-band stencil with mixed-sign couplings."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    i, j, k = _grid_edges_2d(side, side,
                             offsets=((1, 0), (0, 1), (2, 0), (0, 2)))
    w = np.where(k < 2, 1.0, 0.08) * (
        1.0 + 0.05 * np.abs(rng.standard_normal(i.shape[0])))
    # Next-nearest couplings are positive (sign +1), nearest negative.
    signs = np.where(k < 2, -1.0, +1.0)
    coord_sum = np.arange(side * side) // side + np.arange(side * side) % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _jacobi_scaled(_spd_from_edges(i, j, w, side * side,
                                          dominance=0.02, signs=signs))


def gen_materials(n: int, seed: int, *, contrast: float = 100.0
                  ) -> CSRMatrix:
    """Two-phase lattice with high-contrast coefficients."""
    rng = np.random.default_rng(seed)
    side = _cube_side(n)
    nn = side ** 3
    phase = np.where(rng.random(nn) < 0.3, contrast, 1.0)
    i, j = _grid_edges_3d(side, side, side)
    # Harmonic mean of the endpoint phases (flux continuity).
    w = 2.0 * phase[i] * phase[j] / (phase[i] + phase[j])
    idx = np.arange(nn)
    coord_sum = idx // (side * side) + (idx // side) % side + idx % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _jacobi_scaled(_spd_from_edges(i, j, w, nn, dominance=0.02))


def gen_random2d3d(n: int, seed: int, *, k_nearest: int = 6) -> CSRMatrix:
    """Random geometric-graph Laplacian on scattered 2-D points.

    Points are bucketed on a grid and each connects to its *k* nearest
    within the 3×3 neighborhood — O(n) expected work, no SciPy KD-tree.
    """
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    cells_per_side = max(1, int(np.sqrt(n / 4)))
    cell = np.minimum((pts * cells_per_side).astype(np.int64),
                      cells_per_side - 1)
    cell_id = cell[:, 0] * cells_per_side + cell[:, 1]
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    boundaries = np.searchsorted(sorted_ids,
                                 np.arange(cells_per_side ** 2 + 1))
    rows_l, cols_l, w_l = [], [], []
    for cx in range(cells_per_side):
        for cy in range(cells_per_side):
            cid = cx * cells_per_side + cy
            mine = order[boundaries[cid]:boundaries[cid + 1]]
            if mine.size == 0:
                continue
            neigh = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    ex, ey = cx + dx, cy + dy
                    if 0 <= ex < cells_per_side and 0 <= ey < cells_per_side:
                        eid = ex * cells_per_side + ey
                        neigh.append(order[boundaries[eid]:
                                           boundaries[eid + 1]])
            cand = np.concatenate(neigh)
            d2 = ((pts[mine][:, None, :] - pts[cand][None, :, :]) ** 2
                  ).sum(axis=2)
            kk = min(k_nearest + 1, cand.shape[0])
            nearest = np.argpartition(d2, kk - 1, axis=1)[:, :kk]
            src = np.repeat(mine, kk)
            dst = cand[nearest.ravel()]
            ok = src != dst
            rows_l.append(src[ok])
            cols_l.append(dst[ok])
            w_l.append(1.0 / (1e-3 + np.sqrt(
                d2[np.repeat(np.arange(mine.size), kk),
                   nearest.ravel()][ok])))
    return _spd_from_edges(np.concatenate(rows_l), np.concatenate(cols_l),
                           np.concatenate(w_l), n, dominance=0.05)


def gen_statmath(n: int, seed: int, *, corr_len: float = 2.0,
                 band: int = 10, keep_prob: float = 0.6) -> CSRMatrix:
    """Covariance-like matrix ``A_ij ∝ exp(−|i−j|/l)`` on an irregular band.

    Entries inside the band are kept with probability *keep_prob*: a
    thresholded covariance is not a dense band, and the resulting pattern
    makes ILU(0) genuinely incomplete (a full band would factor exactly).
    """
    rng = np.random.default_rng(seed)
    rows_all, cols_all, w_all = [], [], []
    for k in range(1, band + 1):
        length = n - k
        if length <= 0:
            break
        r = np.arange(length, dtype=np.int64)
        keep = rng.random(length) < (1.0 if k == 1 else keep_prob)
        r = r[keep]
        w = np.exp(-k / corr_len) * (1.0 + 0.3 * np.abs(
            rng.standard_normal(r.shape[0])))
        rows_all.append(r)
        cols_all.append(r + k)
        w_all.append(w)
    return _spd_from_edges(np.concatenate(rows_all),
                           np.concatenate(cols_all),
                           np.concatenate(w_all), n, dominance=0.02)


def gen_structural(n: int, seed: int, *, stiff_fraction: float = 0.2,
                   stiffness_ratio: float = 50.0) -> CSRMatrix:
    """FEM-like 9-point stencil with a stiff/soft element mix."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    nn = side * side
    stiff = np.where(rng.random(nn) < stiff_fraction, stiffness_ratio, 1.0)
    i, j, k = _grid_edges_2d(side, side,
                             offsets=((1, 0), (0, 1), (1, 1), (1, -1)))
    w = 0.5 * (stiff[i] + stiff[j]) * rng.lognormal(
        0.0, 1.8, size=i.shape[0])
    w = np.where(k >= 2, 0.25 * w, w)
    coord_sum = np.arange(nn) // side + np.arange(nn) % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _spd_from_edges(i, j, w, nn, dominance=0.02)


def gen_thermal(n: int, seed: int) -> CSRMatrix:
    """Heat conduction with a smooth conductivity field."""
    rng = np.random.default_rng(seed)
    side = _square_side(n)
    xs, ys = np.meshgrid(np.linspace(0, 1, side), np.linspace(0, 1, side),
                         indexing="ij")
    conduct = (1.0 + 0.9 * np.sin(2 * np.pi * xs) * np.sin(2 * np.pi * ys)
               + 0.05 * rng.random((side, side))).ravel()
    i, j, _ = _grid_edges_2d(side, side)
    w = 0.5 * (conduct[i] + conduct[j]) * rng.lognormal(
        0.0, 1.5, size=i.shape[0])
    coord_sum = np.arange(side * side) // side + np.arange(side * side) % side
    w = _weaken_fronts(i, j, w, coord_sum, rng, max_fronts=4)
    return _jacobi_scaled(_spd_from_edges(i, j, w, side * side,
                                          dominance=0.02))


# ----------------------------------------------------------------------
# dispatch table
# ----------------------------------------------------------------------

GENERATORS: dict[str, Callable[..., CSRMatrix]] = {
    "2d3d": gen_2d3d,
    "acoustics": gen_acoustics,
    "circuit": gen_circuit,
    "cfd": gen_cfd,
    "graphics": gen_graphics,
    "counter": gen_counter,
    "dup_model_reduction": lambda n, seed, **kw: gen_model_reduction(
        n, seed, band=kw.pop("band", 10), alpha=kw.pop("alpha", 0.5), **kw),
    "dup_optimization": lambda n, seed, **kw: gen_optimization(
        n, seed, density=kw.pop("density", 0.006),
        spread=kw.pop("spread", 1.5), **kw),
    "economic": gen_economic,
    "electromagnetics": gen_electromagnetics,
    "materials": gen_materials,
    "model_reduction": gen_model_reduction,
    "optimization": gen_optimization,
    "random2d3d": gen_random2d3d,
    "statmath": gen_statmath,
    "structural": gen_structural,
    "thermal": gen_thermal,
}


def generate(category: str, n: int, seed: int, **params) -> CSRMatrix:
    """Generate one matrix of the given category (deterministic)."""
    try:
        gen = GENERATORS[category]
    except KeyError:
        raise DatasetError(f"unknown category {category!r}; "
                           f"known: {sorted(GENERATORS)}") from None
    if n < 4:
        raise DatasetError("n must be at least 4")
    return gen(n, seed, **params)
