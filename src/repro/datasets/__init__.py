"""Synthetic SPD matrix suite — the offline stand-in for SuiteSparse.

The paper evaluates on 107 SPD matrices (order > 1000) from the
SuiteSparse collection, spanning 17 application categories (Figure 9).
Without network access those files are unavailable, so this package
generates a deterministic suite with the *properties that drive the
paper's phenomena* controlled per category:

* sparsity structure (stencil, banded, random graph, geometric graph),
* off-diagonal magnitude spread (what magnitude-based dropping keys on),
* diagonal dominance / conditioning (what convergence depends on),
* bandwidth and dependence-chain length (what wavefront counts depend on).

Real SuiteSparse matrices drop in transparently through
:func:`repro.sparse.read_matrix_market` plus
:func:`~repro.datasets.registry.register_external`.
"""

from .categories import CATEGORIES, Category
from .generators import GENERATORS, generate
from .registry import (
    MatrixSpec,
    SUITE,
    load,
    names,
    by_category,
    specs,
    register_external,
)

__all__ = [
    "CATEGORIES",
    "Category",
    "GENERATORS",
    "generate",
    "MatrixSpec",
    "SUITE",
    "load",
    "names",
    "by_category",
    "specs",
    "register_external",
]
