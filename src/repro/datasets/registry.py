"""The matrix suite registry — 107 named SPD matrices, as in the paper.

The paper's dataset is "all SPD matrices from SuiteSparse with dimension
greater than 1000", filtered to 107 with complete results.  This registry
mirrors the *population structure*: 17 categories × several sizes/seeds,
107 matrices total, orders ≥ ~900 (kept modest so the full suite runs in
CI time on the NumPy substrate; the generators accept any ``n``).

External Matrix Market files can be registered at runtime via
:func:`register_external` and then participate in every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import DatasetError
from ..sparse.csr import CSRMatrix
from .categories import CATEGORIES
from .generators import generate

__all__ = ["MatrixSpec", "SUITE", "load", "names", "by_category", "specs",
           "register_external", "clear_cache"]


@dataclass(frozen=True)
class MatrixSpec:
    """One named matrix of the suite.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"thermal_1600_s2"``.
    category:
        Category key (see :data:`repro.datasets.categories.CATEGORIES`).
    n:
        Requested order (grid generators round to the nearest grid).
    seed:
        RNG seed; the suite is fully deterministic.
    params:
        Extra generator keyword arguments.
    path:
        Set for externally registered Matrix Market files.
    """

    name: str
    category: str
    n: int
    seed: int
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    path: str | None = None

    def build(self) -> CSRMatrix:
        """Generate (or read) the matrix."""
        if self.path is not None:
            from ..sparse.matrix_market import read_matrix_market

            return read_matrix_market(self.path)
        return generate(self.category, self.n, self.seed,
                        **dict(self.params))


def _make_suite() -> list[MatrixSpec]:
    suite: list[MatrixSpec] = []
    # Six size/seed points per category; mirrors the original dataset's
    # spread of orders while staying CI-sized.
    base_sizes = (900, 1156, 1600, 2025, 2500, 3025)

    def add(category: str, n: int, seed: int, **params) -> None:
        pkey = "".join(f"_{k}{v}" for k, v in sorted(params.items()))
        name = f"{category}_{n}_s{seed}{pkey}"
        suite.append(MatrixSpec(name=name, category=category, n=n,
                                seed=seed,
                                params=tuple(sorted(params.items()))))

    for cat in CATEGORIES:
        for idx, n in enumerate(base_sizes):
            if cat.key == "2d3d" and idx % 2 == 1:
                add(cat.key, n, seed=100 + idx, dim=3)
            elif cat.key == "cfd" and idx >= 3:
                add(cat.key, n, seed=100 + idx, eps=0.02)
            elif cat.key == "circuit" and idx >= 3:
                add(cat.key, n, seed=100 + idx, decades=4.0)
            else:
                add(cat.key, n, seed=100 + idx)
    # 17 × 6 = 102; top up to the paper's 107 with five larger systems.
    add("2d3d", 4096, seed=7)
    add("thermal", 4096, seed=7)
    add("statmath", 4000, seed=7)
    add("circuit", 4000, seed=7)
    add("structural", 4096, seed=7)
    names_seen = set()
    for s in suite:
        if s.name in names_seen:
            raise DatasetError(f"duplicate suite name {s.name}")
        names_seen.add(s.name)
    return suite


#: The full evaluation suite (107 matrices).
SUITE: list[MatrixSpec] = _make_suite()

_BY_NAME: dict[str, MatrixSpec] = {s.name: s for s in SUITE}
_CACHE: dict[str, CSRMatrix] = {}


def specs() -> list[MatrixSpec]:
    """All registered specs (built-in suite plus external files)."""
    return list(_BY_NAME.values())


def names() -> list[str]:
    """All registered matrix names."""
    return list(_BY_NAME.keys())


def by_category(category: str) -> list[MatrixSpec]:
    """Specs of one category."""
    found = [s for s in _BY_NAME.values() if s.category == category]
    if not found:
        raise DatasetError(f"no matrices in category {category!r}")
    return found


def load(name: str, *, cache: bool = True) -> CSRMatrix:
    """Build (or fetch from cache) the named matrix."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise DatasetError(f"unknown matrix {name!r}") from None
    if cache and name in _CACHE:
        return _CACHE[name]
    a = spec.build()
    if cache:
        _CACHE[name] = a
    return a


def register_external(name: str, path: str | Path,
                      category: str = "external") -> MatrixSpec:
    """Register a Matrix Market file under *name* (e.g. a real SuiteSparse
    matrix) so it participates in the experiment harness."""
    if name in _BY_NAME:
        raise DatasetError(f"name {name!r} already registered")
    spec = MatrixSpec(name=name, category=category, n=-1, seed=0,
                      path=str(path))
    _BY_NAME[name] = spec
    return spec


def clear_cache() -> None:
    """Drop all cached matrices (tests use this to bound memory)."""
    _CACHE.clear()
