"""Conjugate gradient and left-preconditioned conjugate gradient.

:func:`pcg` implements Algorithm 1 of the paper line by line:

.. code-block:: text

    r0 = b - A x0;  z0 = M^-1 r0;  p0 = z0
    repeat:
        w  = A p
        alpha = (r, z) / (p, w)
        x += alpha p;  r -= alpha w
        z  = M^-1 r
        beta = (r+, z+) / (r, z)
        p  = z + beta p

Each iteration performs one SpMV, one preconditioner application, two
inner products and three AXPYs — the kernel mix the machine model prices.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import AbortSolve, InvalidRequestError, ShapeError
from ..obs.metrics import get_metrics
from ..obs.trace import TraceRecorder, get_recorder
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..sparse.csr import CSRMatrix
from .result import SolveResult, TerminationReason
from .stopping import StoppingCriterion

__all__ = ["cg", "pcg"]


def _finish(rec: TraceRecorder, res: SolveResult) -> SolveResult:
    """Emit the ``solve_end`` event + per-solve metrics; returns *res*."""
    if rec.enabled:
        rec.emit("solve_end", converged=res.converged, n_iters=res.n_iters,
                 reason=res.reason.value, final_residual=res.final_residual)
    metrics = get_metrics()
    metrics.inc("pcg.solves")
    metrics.inc("pcg.iterations", res.n_iters)
    if not res.converged:
        metrics.inc(f"pcg.terminations.{res.reason.value}")
    return res


def pcg(a: CSRMatrix, b: np.ndarray, preconditioner: Preconditioner | None
        = None, *, x0: np.ndarray | None = None,
        criterion: StoppingCriterion | None = None,
        callback: Callable[[int, float], None] | None = None) -> SolveResult:
    """Left-preconditioned conjugate gradient (Algorithm 1).

    Parameters
    ----------
    a:
        SPD system matrix in CSR form (symmetry is assumed, not checked —
        use :func:`repro.sparse.is_symmetric` when in doubt).
    b:
        Right-hand side.
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`; identity when
        ``None``.
    x0:
        Initial guess (zero vector when ``None``, as in the paper).
    criterion:
        Stopping rule; the paper's ``‖r‖ < 1e-12`` / 1000-iteration cap
        when ``None``.
    callback:
        Invoked as ``callback(k, r_norm)`` after each convergence check.
        A callback may raise :class:`repro.errors.AbortSolve` (or a
        subclass, e.g. a :class:`repro.resilience.GuardTrip`) to stop
        the iteration early; the solve then returns a best-effort
        result with reason ``GUARD_TRIPPED`` and the exception stored
        under ``result.extra["abort"]``.

    Returns
    -------
    SolveResult
        Never raises on non-convergence; inspect ``result.reason``.
    """
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("pcg requires a square matrix")
    b = np.asarray(b)
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b.shape}")
    m = preconditioner if preconditioner is not None \
        else IdentityPreconditioner(n)
    if m.n != n:
        raise ShapeError("preconditioner order does not match the matrix")
    crit = criterion if criterion is not None \
        else StoppingCriterion.paper_default()

    dtype = np.result_type(a.dtype, b.dtype)
    x = (np.zeros(n, dtype=dtype) if x0 is None
         else np.asarray(x0, dtype=dtype).copy())
    if x.shape != (n,):
        raise ShapeError(f"x0 must have shape ({n},)")
    if x0 is not None and not np.isfinite(x).all():
        raise InvalidRequestError(
            "x0 contains non-finite entries; a NaN/Inf warm start would "
            "silently poison every iterate")

    b_norm = float(np.linalg.norm(b))
    threshold = crit.threshold(b_norm)

    # Observability: one attribute load + branch per site when disabled
    # (the NULL_RECORDER default), so the iteration hot path stays
    # allocation-free without tracing — the perf-guard invariant.
    rec = get_recorder()
    if rec.enabled:
        rec.emit("solve_start", n=n, nnz=a.nnz, precond=m.name,
                 max_iters=crit.max_iters, tolerance=threshold)

    # r0 = b - A x0  (skip the SpMV for the common zero initial guess)
    r = b.astype(dtype, copy=True) if not x.any() else b - a.matvec(x)
    res_norms = [float(np.linalg.norm(r))]
    if callback is not None:
        try:
            callback(0, res_norms[0])
        except AbortSolve as exc:
            return _finish(rec, SolveResult(
                x=x, converged=False, n_iters=0,
                residual_norms=np.array(res_norms),
                reason=TerminationReason.GUARD_TRIPPED,
                tolerance=threshold,
                extra={"abort": exc}))
    if crit.is_met(res_norms[0], b_norm):
        return _finish(rec, SolveResult(
            x=x, converged=True, n_iters=0,
            residual_norms=np.array(res_norms),
            reason=TerminationReason.CONVERGED,
            tolerance=threshold))

    z = m.apply(r)
    p = z.astype(dtype, copy=True)
    rz = float(np.dot(r, z))
    if rz == 0.0 or not np.isfinite(rz):
        return _finish(rec, SolveResult(
            x=x, converged=False, n_iters=0,
            residual_norms=np.array(res_norms),
            reason=TerminationReason.NUMERICAL_BREAKDOWN,
            tolerance=threshold))

    reason = TerminationReason.MAX_ITERATIONS
    abort: AbortSolve | None = None
    k = 0
    for k in range(1, crit.max_iters + 1):
        w = a.matvec(p)
        pw = float(np.dot(p, w))
        if not np.isfinite(pw):
            reason = TerminationReason.NUMERICAL_BREAKDOWN
            k -= 1
            break
        if pw <= 0.0:
            reason = TerminationReason.INDEFINITE
            k -= 1
            break
        alpha = rz / pw
        x += alpha * p
        r -= alpha * w
        r_norm = float(np.linalg.norm(r))
        res_norms.append(r_norm)
        if rec.enabled:
            rec.emit("iteration", k=k, r_norm=r_norm)
        if callback is not None:
            try:
                callback(k, r_norm)
            except AbortSolve as exc:
                reason = TerminationReason.GUARD_TRIPPED
                abort = exc
                break
        if not np.isfinite(r_norm):
            reason = TerminationReason.NUMERICAL_BREAKDOWN
            break
        if crit.is_met(r_norm, b_norm):
            reason = TerminationReason.CONVERGED
            break
        z = m.apply(r)
        rz_new = float(np.dot(r, z))
        if rz_new == 0.0 or not np.isfinite(rz_new):
            reason = TerminationReason.NUMERICAL_BREAKDOWN
            break
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    return _finish(rec, SolveResult(
        x=x,
        converged=reason is TerminationReason.CONVERGED,
        n_iters=k,
        residual_norms=np.asarray(res_norms),
        reason=reason,
        tolerance=threshold,
        extra={"abort": abort} if abort is not None else {},
    ))


def cg(a: CSRMatrix, b: np.ndarray, **kwargs) -> SolveResult:
    """Unpreconditioned conjugate gradient (PCG with ``M = I``)."""
    return pcg(a, b, None, **kwargs)
