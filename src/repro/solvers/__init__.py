"""Iterative solvers: conjugate gradient and left-preconditioned CG.

:func:`pcg` is a faithful implementation of Algorithm 1 of the paper;
:func:`cg` is the unpreconditioned special case.  Results are returned as
:class:`SolveResult` records carrying the full residual history, the
termination reason, and per-iteration kernel counts for the machine model.
"""

from .result import SolveResult, TerminationReason
from .stopping import StoppingCriterion
from .cg import cg, pcg
from .comm import pipelined_cg, s_step_cg

__all__ = [
    "SolveResult",
    "TerminationReason",
    "StoppingCriterion",
    "cg",
    "pcg",
    "pipelined_cg",
    "s_step_cg",
]
