"""Solve result record returned by the iterative solvers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TerminationReason", "SolveResult"]


class TerminationReason(enum.Enum):
    """Why the iteration stopped."""

    #: Residual norm dropped below the tolerance.
    CONVERGED = "converged"
    #: Iteration budget exhausted (the paper caps at 1000 iterations).
    MAX_ITERATIONS = "max_iterations"
    #: Non-positive curvature ``pᵀAp ≤ 0`` — matrix not SPD (numerically).
    INDEFINITE = "indefinite"
    #: NaN/Inf appeared in the iteration (the paper excludes such runs).
    NUMERICAL_BREAKDOWN = "breakdown"
    #: A callback raised :class:`repro.errors.AbortSolve` — a health
    #: guard stopped the iteration (divergence/stagnation detection).
    GUARD_TRIPPED = "guard_tripped"
    #: A serving deadline expired mid-solve: the scheduler cancelled the
    #: column at an iteration boundary (best-effort iterate retained).
    TIMED_OUT = "timed_out"
    #: The caller cancelled the request mid-solve (explicit
    #: :meth:`repro.serve.ServeScheduler.cancel`, not a deadline).
    CANCELLED = "cancelled"
    #: A corruption detector (ABFT checksum / residual drift) caught
    #: silent data corruption in this column; the iterate is not
    #: trustworthy past its last verified checkpoint.
    CORRUPTED = "corrupted"
    #: The (modeled) device crashed mid-block; every resident column is
    #: frozen with this reason and may be restarted from a checkpoint.
    DEVICE_CRASH = "device_crash"


@dataclass
class SolveResult:
    """Outcome of a (P)CG solve.

    Attributes
    ----------
    x:
        Final iterate (best effort when not converged).
    converged:
        ``True`` iff the stopping criterion was met.
    n_iters:
        Number of completed iterations (0 when the initial guess already
        satisfies the criterion).
    residual_norms:
        2-norms of the (unpreconditioned) residual, one per convergence
        check, starting with the initial residual; length ``n_iters + 1``.
    reason:
        :class:`TerminationReason`.
    tolerance:
        The absolute residual threshold actually used for the checks.
    """

    x: np.ndarray
    converged: bool
    n_iters: int
    residual_norms: np.ndarray
    reason: TerminationReason
    tolerance: float
    extra: dict = field(default_factory=dict)

    @property
    def final_residual(self) -> float:
        """Last recorded residual 2-norm."""
        return (float(self.residual_norms[-1])
                if self.residual_norms.size else float("nan"))

    @property
    def reduction(self) -> float:
        """``‖r_final‖ / ‖r_0‖`` (NaN when the history is empty)."""
        if self.residual_norms.size == 0 or self.residual_norms[0] == 0.0:
            return float("nan")
        return float(self.residual_norms[-1] / self.residual_norms[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SolveResult(converged={self.converged}, "
                f"n_iters={self.n_iters}, "
                f"final_residual={self.final_residual:.3e}, "
                f"reason={self.reason.value})")
