"""Stopping criteria for iterative solvers.

The paper uses an absolute residual accuracy of 1e-12 with a cap of 1000
iterations (Section 4.3); :class:`StoppingCriterion` generalizes that to
the usual ``‖r‖ ≤ max(rtol·‖b‖, atol)`` rule so both absolute and
relative experiments are expressible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidCriterionError

__all__ = ["StoppingCriterion"]


@dataclass(frozen=True)
class StoppingCriterion:
    """Residual-based stopping rule.

    Attributes
    ----------
    rtol:
        Relative tolerance w.r.t. ``‖b‖₂`` (0 disables the relative part).
    atol:
        Absolute tolerance (the paper's 1e-12 corresponds to
        ``rtol=0, atol=1e-12`` — with ``b`` normalized, the two coincide).
    max_iters:
        Iteration cap (paper: 1000).
    """

    rtol: float = 0.0
    atol: float = 1e-12
    max_iters: int = 1000

    def __post_init__(self):
        for name, tol in (("rtol", self.rtol), ("atol", self.atol)):
            if not isinstance(tol, (int, float)) or math.isnan(tol) \
                    or math.isinf(tol):
                raise InvalidCriterionError(
                    f"{name} must be a finite number, got {tol!r}")
        if self.rtol < 0 or self.atol < 0:
            raise InvalidCriterionError("tolerances must be non-negative")
        if self.rtol == 0 and self.atol == 0:
            raise InvalidCriterionError(
                "at least one of rtol/atol must be positive")
        if not isinstance(self.max_iters, (int, np.integer)) \
                or isinstance(self.max_iters, bool):
            raise InvalidCriterionError(
                f"max_iters must be an integer, got {self.max_iters!r}")
        if self.max_iters < 1:
            raise InvalidCriterionError("max_iters must be at least 1")

    def threshold(self, b_norm: float) -> float:
        """Absolute residual threshold for a right-hand side of norm
        ``b_norm``."""
        return max(self.rtol * float(b_norm), self.atol)

    @staticmethod
    def paper_default() -> "StoppingCriterion":
        """The configuration of Section 4.3: ‖r‖ < 1e-12, ≤1000 iterations."""
        return StoppingCriterion(rtol=0.0, atol=1e-12, max_iters=1000)

    def is_met(self, r_norm: float, b_norm: float) -> bool:
        """Whether residual norm *r_norm* satisfies the criterion."""
        return bool(np.isfinite(r_norm)) and r_norm <= self.threshold(b_norm)
