"""Communication-reduced CG variants: pipelined CG and s-step CG.

On one device, a dot product is a kernel-level reduction; on a fleet it
is an **allreduce** whose ring latency grows with the device count.
Algorithm 1 (:func:`~repro.solvers.cg.pcg`) synchronizes three times
per iteration — ``(r, z)``, ``(p, w)`` and the residual-norm check —
which is exactly the term that collapses under inter-device latency.
Following *Communication-reduced Conjugate Gradient Variants for
GPU-accelerated Clusters* (arXiv 2501.03743), this module restructures
the iteration around its synchronization points:

:func:`pipelined_cg`
    Ghysels–Vanroose pipelined PCG: the two dots and the norm check are
    **fused into one allreduce per iteration**, and the recurrence is
    rearranged so that allreduce overlaps the next preconditioner
    application and SpMV (the machine model prices the overlap in
    :func:`repro.fleet.comm_iteration_cost`).  Costs three extra vector
    recurrences per iteration — latency is bought with FLOPs.

:func:`s_step_cg`
    Communication-avoiding s-step PCG: each outer step builds a
    ``2s+1``-vector Krylov basis (monomial, under the preconditioned
    operator ``Q = M⁻¹A``), computes every inner product the next ``s``
    iterations need as **one fused Gram-matrix allreduce**, then runs
    the ``s`` CG updates in coefficient space.  One more reduction per
    outer step verifies the true residual at reconstruction (the
    residual-replacement guard that keeps the monomial basis honest),
    so the variant pays **2 allreduces per s iterations** against
    standard PCG's ``3s``.  At ``s = 1`` the algorithm *is* standard
    PCG — the code path is shared with :func:`~repro.solvers.cg.pcg`,
    so the residual history is reproduced exactly.

Both variants return the same :class:`~repro.solvers.result.SolveResult`
as ``pcg`` with a ``result.extra["comm"]`` dict recording the variant,
the allreduce count, and the scalars moved per fused reduction — the
hooks the fleet cost model and the benchmarks read.  Numerics are
column-independent: a ``(n, B)`` right-hand-side block returns one
result per column (batching changes the *pricing*, never the iterates).

Both variants trade rounding robustness for synchronization: the
pipelined recurrences drift, and the monomial s-step basis conditions
like ``κ(Q)^s`` (a *strong* preconditioner makes ``Q ≈ I`` and the
basis nearly collinear).  Convergence is therefore only ever declared
on a **verified true residual**, and when verification shows a stalled
trajectory the solver degrades gracefully — s-step halves ``s``, and
both variants ultimately fall back to a warm-started standard ``pcg``
for the remaining iteration budget (``extra["comm"]["fallback_iters"]``
reports how many iterations ran at full synchronization).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ShapeError
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..sparse.csr import CSRMatrix
from .cg import pcg
from .result import SolveResult, TerminationReason
from .stopping import StoppingCriterion

__all__ = ["pipelined_cg", "s_step_cg"]


def _norm(v: np.ndarray) -> float:
    return float(np.linalg.norm(v))


def _block_dispatch(solve_one, a, b, x0):
    """Run *solve_one* per column of a 2-D right-hand side block."""
    b = np.asarray(b)
    results = []
    for j in range(b.shape[1]):
        xj = None if x0 is None else np.asarray(x0)[:, j]
        results.append(solve_one(np.ascontiguousarray(b[:, j]), xj))
    return results


def _setup(a: CSRMatrix, b: np.ndarray,
           preconditioner: Preconditioner | None,
           criterion: StoppingCriterion | None):
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("cg variants require a square matrix")
    m = preconditioner if preconditioner is not None \
        else IdentityPreconditioner(n)
    if m.n != n:
        raise ShapeError("preconditioner order does not match the matrix")
    crit = criterion if criterion is not None \
        else StoppingCriterion.paper_default()
    return m, crit


#: A block/verification that fails to shrink the *true* residual below
#: this fraction of the previous verified norm marks a stalled
#: trajectory (the communication-reduced recurrence hit its attainable
#: accuracy floor) and triggers graceful degradation.
_STALL_RATIO = 0.9


def _pcg_tail(a, b_arr, m, x, crit, iters_used):
    """Finish a stalled solve with warm-started standard PCG."""
    remaining = crit.max_iters - iters_used
    if remaining <= 0:
        return None
    return pcg(a, b_arr, m, x0=x,
               criterion=StoppingCriterion(rtol=crit.rtol, atol=crit.atol,
                                           max_iters=remaining))


# ---------------------------------------------------------------------------
# Pipelined CG (Ghysels & Vanroose)
# ---------------------------------------------------------------------------

def pipelined_cg(a: CSRMatrix, b: np.ndarray,
                 preconditioner: Preconditioner | None = None, *,
                 x0: np.ndarray | None = None,
                 criterion: StoppingCriterion | None = None):
    """Preconditioned pipelined CG: one fused allreduce per iteration.

    The recurrence (Ghysels & Vanroose, 2014) computes ``γ = (r, u)``,
    ``δ = (w, u)`` and ``‖r‖`` in a single fused reduction, then hides
    that allreduce behind ``m = M⁻¹w`` and ``n = A m`` — the two
    operator applications the next iteration needs anyway.  In exact
    arithmetic the iterates equal standard PCG's; in floating point
    they drift by rounding only (the property suite pins agreement to
    1e-8 at convergence).

    Returns a :class:`SolveResult` for a 1-D ``b``, or a list of
    per-column results for an ``(n, B)`` block.
    """
    b_arr = np.asarray(b)
    if b_arr.ndim == 2:
        return _block_dispatch(
            lambda bj, xj: pipelined_cg(a, bj, preconditioner, x0=xj,
                                        criterion=criterion),
            a, b_arr, x0)
    m, crit = _setup(a, b_arr, preconditioner, criterion)
    n = a.n_rows
    if b_arr.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b_arr.shape}")
    dtype = np.result_type(a.dtype, b_arr.dtype)
    x = (np.zeros(n, dtype=dtype) if x0 is None
         else np.asarray(x0, dtype=dtype).copy())
    if x.shape != (n,):
        raise ShapeError(f"x0 must have shape ({n},)")
    b_norm = _norm(b_arr)
    threshold = crit.threshold(b_norm)
    allreduces = 0
    verifications = 0
    fallback_iters = 0

    def finish(reason, k, res_norms):
        return SolveResult(
            x=x, converged=reason is TerminationReason.CONVERGED,
            n_iters=k, residual_norms=np.asarray(res_norms, dtype=float),
            reason=reason, tolerance=threshold,
            extra={"comm": {"variant": "pipelined",
                            "allreduces": allreduces,
                            "scalars_per_allreduce": 3,
                            "verifications": verifications,
                            "fallback_iters": fallback_iters}})

    def fallback(fail_reason, k, res_norms):
        nonlocal x, allreduces, fallback_iters
        tail = _pcg_tail(a, b_arr, m, x, crit, k)
        if tail is None:
            return finish(fail_reason, k, res_norms)
        x = tail.x
        res_norms.extend(tail.residual_norms[1:].tolist())
        allreduces += 3 * tail.n_iters
        fallback_iters = tail.n_iters
        return finish(tail.reason, k + tail.n_iters, res_norms)

    r = b_arr.astype(dtype, copy=True) if not x.any() else b_arr - a.matvec(x)
    res_norms = [_norm(r)]
    if crit.is_met(res_norms[0], b_norm):
        return finish(TerminationReason.CONVERGED, 0, res_norms)
    u = m.apply(r)
    w = a.matvec(u)

    z = np.zeros(n, dtype=dtype)
    q = np.zeros(n, dtype=dtype)
    s_vec = np.zeros(n, dtype=dtype)
    p = np.zeros(n, dtype=dtype)
    gamma_old = 0.0
    alpha_old = 0.0
    last_true = None
    reason = TerminationReason.MAX_ITERATIONS
    k = 0
    while k < crit.max_iters:
        k += 1
        # Fused allreduce: γ, δ and the previous residual's norm travel
        # together; it overlaps the M⁻¹w / A(M⁻¹w) applications below.
        gamma = float(np.dot(r, u))
        delta = float(np.dot(w, u))
        allreduces += 1
        if gamma == 0.0 or not math.isfinite(gamma):
            return fallback(TerminationReason.NUMERICAL_BREAKDOWN,
                            k - 1, res_norms)
        mw = m.apply(w)
        nw = a.matvec(mw)
        if k > 1:
            beta = gamma / gamma_old
            denom = delta - beta * gamma / alpha_old
        else:
            beta = 0.0
            denom = delta
        # denom equals (p, A p) of the equivalent standard iteration; a
        # non-positive or non-finite value may be genuine indefiniteness
        # or recurrence drift — either way standard PCG is the arbiter.
        if not math.isfinite(denom) or denom <= 0.0:
            return fallback(TerminationReason.INDEFINITE, k - 1, res_norms)
        alpha = gamma / denom
        z = nw + beta * z
        q = mw + beta * q
        s_vec = w + beta * s_vec
        p = u + beta * p
        x += alpha * p
        r -= alpha * s_vec
        u -= alpha * q
        w -= alpha * z
        gamma_old, alpha_old = gamma, alpha
        r_norm = _norm(r)
        res_norms.append(r_norm)
        if not math.isfinite(r_norm):
            if not np.isfinite(x).all():
                reason = TerminationReason.NUMERICAL_BREAKDOWN
                break
            return fallback(TerminationReason.NUMERICAL_BREAKDOWN,
                            k, res_norms)
        if crit.is_met(r_norm, b_norm):
            # Convergence is only declared on a verified true residual
            # (one extra reduction): the pipelined recurrence drifts.
            r_true = b_arr - a.matvec(x)
            true_norm = _norm(r_true)
            verifications += 1
            allreduces += 1
            res_norms[-1] = true_norm
            if crit.is_met(true_norm, b_norm):
                reason = TerminationReason.CONVERGED
                break
            if last_true is not None and true_norm > _STALL_RATIO * last_true:
                return fallback(TerminationReason.MAX_ITERATIONS,
                                k, res_norms)
            last_true = true_norm
            # Residual replacement: rebuild every recurrence vector from
            # x and p, discarding the accumulated drift.
            r = r_true
            u = m.apply(r)
            w = a.matvec(u)
            s_vec = a.matvec(p)
            q = m.apply(s_vec)
            z = a.matvec(q)
    return finish(reason, k, res_norms)


# ---------------------------------------------------------------------------
# s-step (communication-avoiding) CG
# ---------------------------------------------------------------------------

def _shift_matrix(s: int) -> np.ndarray:
    """Coefficient-space representation of ``Q = M⁻¹A`` on the monomial
    basis ``[p, Qp, …, Qˢp, z, Qz, …, Qˢ⁻¹z]`` (2s+1 vectors).

    ``Q`` shifts within each chain; the top-degree columns are never
    touched by the inner loop (the coefficient degrees stay one below
    the chain tops by construction).
    """
    k = 2 * s + 1
    bmat = np.zeros((k, k))
    for j in range(s):
        bmat[j + 1, j] = 1.0
    for j in range(s - 1):
        bmat[s + 2 + j, s + 1 + j] = 1.0
    return bmat


def s_step_cg(a: CSRMatrix, b: np.ndarray,
              preconditioner: Preconditioner | None = None, *,
              s: int = 2, x0: np.ndarray | None = None,
              criterion: StoppingCriterion | None = None):
    """Communication-avoiding s-step PCG: one Gram allreduce per s
    iterations (plus one true-residual verification per outer step).

    Each outer step builds the monomial basis ``V = [p, Qp, …, Qˢp, z,
    Qz, …, Qˢ⁻¹z]`` with ``Q = M⁻¹A`` and its image ``U = M·V`` (free:
    ``M·Qᵏv = A·Qᵏ⁻¹v`` falls out of the construction, ``M·z = r``, and
    ``M·p`` rides a one-AXPY recurrence).  The cross-Gram ``G = VᵀU``
    prices every M-inner product the next ``s`` CG updates need —
    ``(r, z) = ⟨z, z⟩_M`` and ``(p, Ap) = ⟨p, Qp⟩_M`` become quadratic
    forms of coefficient vectors — while ``H = UᵀU`` yields the
    per-iteration residual norms, all from **one fused allreduce**.
    At reconstruction the true residual ``b − Ax`` is recomputed and
    re-checked (residual replacement), bounding monomial-basis rounding
    across outer steps.

    ``s = 1`` degenerates to standard PCG — one fused reduction per
    iteration with no basis to build — and shares
    :func:`~repro.solvers.cg.pcg`'s code path, reproducing its residual
    history bit for bit.

    Returns a :class:`SolveResult` for a 1-D ``b``, or a list of
    per-column results for an ``(n, B)`` block.
    """
    s = int(s)
    if s < 1:
        raise ValueError(f"s must be at least 1, got {s}")
    b_arr = np.asarray(b)
    if b_arr.ndim == 2:
        return _block_dispatch(
            lambda bj, xj: s_step_cg(a, bj, preconditioner, s=s, x0=xj,
                                     criterion=criterion),
            a, b_arr, x0)
    if s == 1:
        res = pcg(a, b_arr, preconditioner, x0=x0, criterion=criterion)
        res.extra["comm"] = {"variant": "s_step", "s": 1,
                             "allreduces": res.n_iters,
                             "scalars_per_allreduce": 3,
                             "blocks": res.n_iters,
                             "fallback_iters": 0, "s_final": 1}
        return res
    m, crit = _setup(a, b_arr, preconditioner, criterion)
    n = a.n_rows
    if b_arr.shape != (n,):
        raise ShapeError(f"b must have shape ({n},), got {b_arr.shape}")
    dtype = np.result_type(a.dtype, b_arr.dtype, np.float64)
    x = (np.zeros(n, dtype=dtype) if x0 is None
         else np.asarray(x0, dtype=dtype).copy())
    if x.shape != (n,):
        raise ShapeError(f"x0 must have shape ({n},)")
    b_norm = _norm(b_arr)
    threshold = crit.threshold(b_norm)
    k_basis = 2 * s + 1
    allreduces = 0
    blocks = 0
    fallback_iters = 0
    s_eff = s

    def finish(reason, iters, res_norms):
        return SolveResult(
            x=x, converged=reason is TerminationReason.CONVERGED,
            n_iters=iters, residual_norms=np.asarray(res_norms,
                                                     dtype=float),
            reason=reason, tolerance=threshold,
            extra={"comm": {"variant": "s_step", "s": s,
                            "allreduces": allreduces,
                            "scalars_per_allreduce": k_basis * k_basis,
                            "blocks": blocks,
                            "fallback_iters": fallback_iters,
                            "s_final": s_eff}})

    def fallback(fail_reason, iters, res_norms):
        nonlocal x, allreduces, fallback_iters
        tail = _pcg_tail(a, b_arr, m, x, crit, iters)
        if tail is None:
            return finish(fail_reason, iters, res_norms)
        x = tail.x
        res_norms.extend(tail.residual_norms[1:].tolist())
        allreduces += 3 * tail.n_iters
        fallback_iters = tail.n_iters
        return finish(tail.reason, iters + tail.n_iters, res_norms)

    r = b_arr.astype(dtype, copy=True) if not x.any() else b_arr - a.matvec(x)
    res_norms = [_norm(r)]
    if crit.is_met(res_norms[0], b_norm):
        return finish(TerminationReason.CONVERGED, 0, res_norms)
    z = m.apply(r)
    p = z.copy()
    mp = r.copy()          # M·p, maintained alongside p (p₀ = z ⇒ Mp₀ = r)
    bmat = _shift_matrix(s_eff)
    k_eff = k_basis
    last_true = res_norms[0]
    iters = 0
    reason = TerminationReason.MAX_ITERATIONS
    while iters < crit.max_iters:
        blocks += 1
        # ---- basis construction: 2s−1 operator applications ----------
        v_basis = np.empty((n, k_eff), dtype=dtype)
        u_basis = np.empty((n, k_eff), dtype=dtype)
        v_basis[:, 0] = p
        u_basis[:, 0] = mp
        for j in range(1, s_eff + 1):
            u_basis[:, j] = a.matvec(v_basis[:, j - 1])
            v_basis[:, j] = m.apply(u_basis[:, j])
        v_basis[:, s_eff + 1] = z
        u_basis[:, s_eff + 1] = r
        for j in range(1, s_eff):
            u_basis[:, s_eff + 1 + j] = a.matvec(v_basis[:, s_eff + j])
            v_basis[:, s_eff + 1 + j] = m.apply(u_basis[:, s_eff + 1 + j])
        # ---- the one allreduce: both Gram matrices travel fused ------
        gram = v_basis.T @ u_basis          # ⟨·,·⟩_M on the basis
        gram = 0.5 * (gram + gram.T)
        hgram = u_basis.T @ u_basis         # Euclidean, for ‖r‖
        hgram = 0.5 * (hgram + hgram.T)
        allreduces += 1
        if not (np.isfinite(gram).all() and np.isfinite(hgram).all()):
            return fallback(TerminationReason.NUMERICAL_BREAKDOWN,
                            iters, res_norms)
        # ---- s inner iterations in coefficient space -----------------
        c_p = np.zeros(k_eff)
        c_p[0] = 1.0
        c_z = np.zeros(k_eff)
        c_z[s_eff + 1] = 1.0
        c_x = np.zeros(k_eff)
        gamma = float(c_z @ gram @ c_z)     # (r, z)
        if gamma == 0.0 or not math.isfinite(gamma):
            return fallback(TerminationReason.NUMERICAL_BREAKDOWN,
                            iters, res_norms)
        inner_break = None
        for _ in range(s_eff):
            w_c = bmat @ c_p
            pap = float(c_p @ gram @ w_c)   # (p, A p)
            if not math.isfinite(pap) or pap <= 0.0:
                # Genuine indefiniteness or a collapsed basis — either
                # way the fallback's standard PCG is the arbiter.
                inner_break = TerminationReason.INDEFINITE
                break
            alpha = gamma / pap
            c_x += alpha * c_p
            c_z = c_z - alpha * w_c
            iters += 1
            r_norm = math.sqrt(max(0.0, float(c_z @ hgram @ c_z)))
            res_norms.append(r_norm)
            if not math.isfinite(r_norm):
                inner_break = TerminationReason.NUMERICAL_BREAKDOWN
                break
            if crit.is_met(r_norm, b_norm) or iters >= crit.max_iters:
                break
            gamma_new = float(c_z @ gram @ c_z)
            if gamma_new == 0.0 or not math.isfinite(gamma_new):
                inner_break = TerminationReason.NUMERICAL_BREAKDOWN
                break
            beta = gamma_new / gamma
            gamma = gamma_new
            c_p = c_z + beta * c_p
        # ---- reconstruction + residual replacement -------------------
        x = x + v_basis @ c_x
        if not np.isfinite(x).all():
            reason = TerminationReason.NUMERICAL_BREAKDOWN
            break
        if inner_break is not None:
            return fallback(inner_break, iters, res_norms)
        # Verify against the true residual (second reduction per outer
        # step): the recurrence norms above came through the monomial
        # Gram matrix, whose conditioning grows like κ(Q)^s.
        r = b_arr - a.matvec(x)
        true_norm = _norm(r)
        allreduces += 1
        res_norms[-1] = true_norm
        if not math.isfinite(true_norm):
            reason = TerminationReason.NUMERICAL_BREAKDOWN
            break
        if crit.is_met(true_norm, b_norm):
            reason = TerminationReason.CONVERGED
            break
        z = m.apply(r)
        if true_norm > _STALL_RATIO * last_true:
            # Stalled block: the monomial basis hit its conditioning
            # floor.  Halve s (restarting the search direction from the
            # verified residual); below s=2 hand over to standard PCG.
            last_true = true_norm
            s_eff //= 2
            if s_eff < 2:
                return fallback(TerminationReason.MAX_ITERATIONS,
                                iters, res_norms)
            bmat = _shift_matrix(s_eff)
            k_eff = 2 * s_eff + 1
            p = z.copy()
            mp = r.copy()
            continue
        last_true = true_norm
        p = v_basis @ c_p
        mp = u_basis @ c_p
    return finish(reason, iters, res_norms)
