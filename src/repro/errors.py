"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still letting
programming errors (``TypeError`` from bad call signatures, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "SparseFormatError",
    "NotTriangularError",
    "SingularFactorError",
    "NotSymmetricError",
    "NotPositiveDefiniteError",
    "ConvergenceError",
    "MatrixMarketError",
    "DatasetError",
    "DeviceModelError",
    "FillLimitExceeded",
    "InvalidCriterionError",
    "InvalidRequestError",
    "QueueFullError",
    "AbortSolve",
    "SuiteWorkerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or matrix has an incompatible or invalid shape."""


class SparseFormatError(ReproError, ValueError):
    """A sparse container's internal arrays violate the format invariants.

    Raised by the ``check_format`` validators when e.g. ``indptr`` is not
    monotone, column indices are out of range, or duplicate entries exist
    where a canonical format is required.
    """


class NotTriangularError(ReproError, ValueError):
    """A matrix expected to be (lower/upper) triangular is not."""


class SingularFactorError(ReproError, ArithmeticError):
    """A zero (or numerically negligible) pivot was met during factorization
    or triangular solution."""

    def __init__(self, row: int, pivot: float, message: str | None = None):
        self.row = int(row)
        self.pivot = float(pivot)
        super().__init__(
            message
            or f"zero or negligible pivot {pivot!r} encountered at row {row}"
        )


class NotSymmetricError(ReproError, ValueError):
    """A matrix required to be symmetric is structurally or numerically not."""


class NotPositiveDefiniteError(ReproError, ArithmeticError):
    """An SPD-only routine detected an indefinite matrix (e.g. CG met
    a non-positive curvature direction)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method failed to converge and the caller asked for a
    hard failure instead of a best-effort result."""


class MatrixMarketError(ReproError, ValueError):
    """Malformed Matrix Market file content."""


class DatasetError(ReproError, KeyError):
    """Unknown dataset name or invalid generator parameters."""


class DeviceModelError(ReproError, ValueError):
    """Invalid device-model parameters (non-positive bandwidth, etc.)."""


class InvalidCriterionError(ReproError, ValueError):
    """A stopping criterion was constructed with invalid parameters
    (non-positive iteration cap, negative or non-finite tolerances)."""


class InvalidRequestError(ReproError, ValueError):
    """A solve request carries an unusable right-hand side.

    Raised at *submission* time (``SolverService.submit`` /
    ``ServeScheduler.submit``) when ``b`` has a non-numeric dtype or
    contains NaN/Inf entries, so a malformed request fails at the call
    site that produced it — naming the offending ``tag`` — instead of
    surfacing mid-flush deep inside a batched block solve.
    """


class QueueFullError(ReproError, RuntimeError):
    """The serving queue rejected a request (backpressure).

    Raised by :meth:`repro.serve.RequestQueue.push` when the queue's
    admission policy would shed the request — depth at ``max_depth`` or
    modeled backlog past ``max_backlog_s``.  ``reason`` carries the
    admission predicate that failed (``"queue_depth"`` /
    ``"backlog_seconds"``) so callers can distinguish the two forms of
    overload.
    """

    def __init__(self, reason: str, message: str | None = None):
        self.reason = str(reason)
        super().__init__(message
                         or f"request rejected by admission control "
                            f"({reason})")


class AbortSolve(ReproError, RuntimeError):
    """Raised *by a solver callback* to abort the iteration early.

    :func:`repro.solvers.pcg` catches this family around its callback
    invocations and turns it into a best-effort
    :class:`~repro.solvers.result.SolveResult` with reason
    ``GUARD_TRIPPED`` instead of propagating — the mechanism the
    :mod:`repro.resilience` health guards use to stop a diverging or
    stagnating solve without losing the iterate computed so far.
    """


class SuiteWorkerError(ReproError, RuntimeError):
    """A suite experiment failed; names the matrix that caused it.

    Raised by :func:`repro.harness.suite.run_suite` on both the
    sequential and the parallel path so a sweep failure always
    identifies *which* matrix broke — the parallel runner drains every
    remaining future (orderly pool shutdown, no abandoned work) before
    re-raising the first failure with any further failing matrices
    listed in the message.
    """

    def __init__(self, matrix: str, message: str | None = None):
        self.matrix = str(matrix)
        super().__init__(message
                         or f"suite experiment failed on matrix "
                            f"{matrix!r}")


class FillLimitExceeded(ReproError, RuntimeError):
    """Symbolic ILU(K) fill grew past the caller-imposed cap.

    Raised by :func:`repro.precond.iluk.iluk_symbolic` when ``nnz_cap`` is
    set; lets K-selection sweeps abandon a fill-explosive candidate early
    instead of paying the full symbolic cost.
    """
