"""Batched multi-RHS solves and the fingerprint-grouped solver service.

The paper removes per-wavefront synchronization by sparsifying the
preconditioner; this package removes it a second way, orthogonal to the
first: amortizing each wavefront's launch and barrier across a block of
right-hand sides.  :func:`pcg_block` is the block Algorithm 1 (per-column
scalars, per-column convergence, frozen columns never recomputed);
:class:`SolverService` turns a stream of ``(A, b)`` requests into
fingerprint-grouped batched dispatches that reuse cached factorizations.
"""

from .block import (BlockSolveResult, BoundaryView, CheckpointState,
                    SlotDecision, SlotHook, VerifyConfig, pcg_block)
from .service import BatchReport, GroupReport, SolveRequest, SolverService

__all__ = [
    "BlockSolveResult",
    "BoundaryView",
    "CheckpointState",
    "SlotDecision",
    "SlotHook",
    "VerifyConfig",
    "pcg_block",
    "SolveRequest",
    "GroupReport",
    "BatchReport",
    "SolverService",
]
