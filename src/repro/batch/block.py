"""Batched multi-RHS preconditioned conjugate gradient.

:func:`pcg_block` runs Algorithm 1 over an ``(n, B)`` block of
right-hand sides simultaneously.  The paper's speedup story is
amortizing per-wavefront synchronization; the same amortization applies
across right-hand sides: one level-scheduled triangular sweep over the
block pays the wavefront barriers once for all ``B`` solves (the
``B``-fold launch/sync saving :func:`repro.machine.kernels.
iteration_cost_batched` prices), which is the batching lever multi-
request throughput lives on — the same grouping-to-cut-synchronizations
idea as communication-reduced CG variants on GPU clusters.

Semantics
---------
Every column evolves with its *own* alpha/beta (scalars per column, not
a block Krylov method), its own convergence check against the stopping
criterion, and its own breakdown classification.  A column that
terminates — converged, indefinite curvature, numerical breakdown — is
**frozen**: it leaves the working set and is never recomputed, exactly
as if its sequential :func:`repro.solvers.cg.pcg` loop had stopped.
The result therefore decomposes into per-column
:class:`~repro.solvers.result.SolveResult` records matching a
sequential ``pcg`` loop (bitwise, up to the reduction kernels; within
1e-10 in the property tests).

Continuous batching
-------------------
A *slot hook* (:data:`SlotHook`) turns the static block into a rolling
one: at every iteration boundary the hook may **admit** new right-hand
sides into slots freed by retired columns and **cancel** running
columns (deadline expiry, caller cancellation).  An admitted column
starts its own iteration 0 at that boundary — zero initial guess (or a
caller-supplied warm start), its own residual history, its own stopping
threshold — so its trajectory is
the one a fresh sequential solve would take; resident columns are never
recomputed or perturbed (their per-column scalars and reductions do not
see the newcomer).  :mod:`repro.serve` builds its online scheduler on
this hook.

Verification and checkpoint/restart
-----------------------------------
A :class:`VerifyConfig` arms two silent-corruption detectors (the ABFT
machinery communication-reduced CG variants lean on for numerical
trust):

* **ABFT column checksums** — every batched SpMV ``w = A·p`` is
  verified against the precomputed column-sum vector ``s = 1ᵀA``:
  ``1ᵀw_j`` must match ``s·p_j`` to a rounding-scaled tolerance.  A
  mismatch freezes the column at its *pre-sweep* state (which the
  checksum just proved clean) with ``CORRUPTED``.
* **Periodic true-residual checks** — every ``residual_check_every``
  local sweeps a column's recurrence residual is compared against the
  recomputed ``b − A·x``; drift beyond tolerance is classified
  ``CORRUPTED``, agreement marks the column *verified* at this
  boundary (optionally replacing the recurrence residual with the true
  one — classic residual replacement, off by default because it
  perturbs the trajectory the restart-exactness tests pin down).

A three-argument slot hook additionally receives a
:class:`BoundaryView` whose :meth:`~BoundaryView.capture` snapshots a
live column's full CG state as a :class:`CheckpointState`; admitting
``(key, b, checkpoint)`` later resumes that column *bitwise* where the
snapshot left off (per-column kernels are batch-composition
independent), which is the serving layer's crash/corruption recovery
path.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from ..errors import AbortSolve, InvalidRequestError, ShapeError
from ..obs.metrics import get_metrics
from ..obs.trace import get_recorder
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..solvers.result import SolveResult, TerminationReason
from ..solvers.stopping import StoppingCriterion
from ..sparse.csr import CSRMatrix

__all__ = ["BlockSolveResult", "SlotDecision", "SlotHook", "VerifyConfig",
           "CheckpointState", "BoundaryView", "pcg_block"]


@dataclass
class SlotDecision:
    """What a slot hook wants done at one iteration boundary.

    Attributes
    ----------
    admit:
        ``(key, b)`` pairs — or ``(key, b, state)`` triples — to
        admit as new columns.  *key* is the caller's opaque handle (a
        request id); it comes back in ``extra["serve"]["keys"]``.  A
        two-tuple (or ``state=None``) starts at the column's own
        iteration 0 with a zero initial guess; a
        :class:`CheckpointState` resumes the column bitwise from that
        snapshot (the crash/corruption restart path); a plain
        ``(n,)`` ndarray is a **warm start** — the column begins its
        own iteration 0 from that guess (residual ``b − A·x0``), the
        amortized-stream join path.
    cancel:
        ``(key, reason)`` pairs; each matching **active** column is
        frozen at the boundary with that termination reason and the
        iterate it has already earned.  Keys that are unknown or already
        retired are ignored — cancelling a completed column is a no-op
        by construction.
    """

    admit: Sequence[tuple] = ()
    cancel: Sequence[tuple[object, TerminationReason]] = ()

    def __bool__(self) -> bool:
        return bool(self.admit) or bool(self.cancel)


#: Called as ``hook(sweep, active_keys)`` — or, when the callable
#: accepts a third parameter, ``hook(sweep, active_keys, view)`` with a
#: :class:`BoundaryView` — at the boundary *before* sweep ``sweep``
#: runs (1-based).  ``active_keys`` is the tuple of keys of live
#: columns before the decision is applied, so the caller always knows
#: exactly which of its requests still occupy slots; the hook owns any
#: notion of time (the serving scheduler advances its modeled clock
#: here).  Returning ``None`` means "no changes".  When the working set
#: is empty and the hook admits nothing, the block ends.
SlotHook = Callable[..., "SlotDecision | None"]


@dataclass(frozen=True)
class VerifyConfig:
    """Silent-corruption detection knobs for :func:`pcg_block`.

    Attributes
    ----------
    abft:
        Verify every batched SpMV against the column-sum checksum
        vector ``s = 1ᵀA`` (``1ᵀ(A·p)_j`` vs ``s·p_j`` per column).
    abft_rtol:
        Relative checksum tolerance, scaled by ``|s|ᵀ|p_j|`` so it
        tracks the rounding error of the sums being compared; well
        above float64 accumulation noise at the suite's orders, well
        below any injected exponent/mantissa bit flip.
    residual_check_every:
        Recompute the true residual ``b − A·x`` every this many *local*
        sweeps per column and compare against the recurrence residual
        (``None`` disables).  Columns that pass are reported *verified*
        at that boundary — the states the serving layer checkpoints.
    residual_rtol:
        Drift tolerance relative to the column's ``‖b‖``.
    replace:
        On a passing check, replace the recurrence residual with the
        true residual and restart the search direction (van der Vorst
        style residual replacement).  Off by default: replacement
        perturbs the trajectory, and the recovery invariants pin the
        restarted trajectory bitwise to the fault-free one.
    """

    abft: bool = True
    abft_rtol: float = 1e-8
    residual_check_every: int | None = None
    residual_rtol: float = 1e-6
    replace: bool = False

    def __post_init__(self):
        if self.abft_rtol <= 0 or self.residual_rtol <= 0:
            raise ValueError("verification tolerances must be positive")
        if (self.residual_check_every is not None
                and self.residual_check_every < 1):
            raise ValueError("residual_check_every must be positive "
                             "or None")


@dataclass(frozen=True)
class CheckpointState:
    """Complete CG state of one column at an iteration boundary.

    Captured by :meth:`BoundaryView.capture` (deep copies — the block
    keeps mutating its working set) and consumed by a later
    ``SlotDecision.admit`` triple.  Because every per-column kernel is
    bitwise independent of batch composition, resuming from a
    checkpoint continues the *exact* trajectory the column would have
    taken uncorrupted — the foundation of the exact-recovery invariant.
    """

    x: np.ndarray
    r: np.ndarray
    p: np.ndarray
    rz: float
    iters: int
    history: tuple[float, ...]

    def __post_init__(self):
        if self.iters < 0:
            raise ValueError("iters must be non-negative")
        if len(self.history) != self.iters + 1:
            raise ValueError(
                f"history length {len(self.history)} does not match "
                f"iters {self.iters} (+1 for the initial residual)")


class BoundaryView:
    """Read-only window into the block state at one iteration boundary,
    handed to three-argument slot hooks.

    Attributes
    ----------
    sweep:
        The 1-based boundary (same value as the hook's first argument).
    verified:
        Keys whose true-residual check *passed at this boundary* —
        their live state is proven consistent, safe to checkpoint.
    detected:
        Corruption detections since the previous boundary: dicts with
        ``key``, ``method`` (``"abft"`` / ``"residual"``), ``sweep``,
        ``error`` and ``tolerance``.  The named columns are already
        frozen with ``CORRUPTED``.
    """

    __slots__ = ("sweep", "verified", "detected", "_capture")

    def __init__(self, sweep: int, verified: tuple, detected: tuple,
                 capture: Callable[[object], CheckpointState]):
        self.sweep = sweep
        self.verified = verified
        self.detected = detected
        self._capture = capture

    def capture(self, key: object) -> CheckpointState:
        """Snapshot the live column *key* (deep copy).  Raises
        ``KeyError`` for unknown or already-retired keys."""
        return self._capture(key)


@dataclass
class BlockSolveResult:
    """Outcome of one block PCG solve over ``B`` right-hand sides.

    Attributes
    ----------
    x:
        Final iterates, shape ``(n, B)`` (best effort per column).
    converged:
        Boolean array ``(B,)``.
    n_iters:
        Completed iterations per column, ``(B,)``.
    residual_norms:
        Per column, the residual 2-norm history (length
        ``n_iters[j] + 1``) — frozen columns stop accumulating.
    reasons:
        Per-column :class:`~repro.solvers.result.TerminationReason`.
    tolerances:
        Per-column absolute residual thresholds actually used.
    """

    x: np.ndarray
    converged: np.ndarray
    n_iters: np.ndarray
    residual_norms: list[np.ndarray]
    reasons: list[TerminationReason]
    tolerances: np.ndarray
    extra: dict = field(default_factory=dict)

    @property
    def batch(self) -> int:
        """Number of right-hand sides ``B``."""
        return int(self.x.shape[1])

    @property
    def block_iters(self) -> int:
        """Wavefront sweeps the block actually performed — the maximum
        per-column iteration count (frozen columns ride along for free)."""
        return int(self.n_iters.max()) if self.n_iters.size else 0

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    def column(self, j: int) -> SolveResult:
        """Decompose into the per-column :class:`SolveResult`."""
        extra = dict(self.extra) \
            if self.reasons[j] is TerminationReason.GUARD_TRIPPED else {}
        return SolveResult(
            x=self.x[:, j].copy(),
            converged=bool(self.converged[j]),
            n_iters=int(self.n_iters[j]),
            residual_norms=np.asarray(self.residual_norms[j]),
            reason=self.reasons[j],
            tolerance=float(self.tolerances[j]),
            extra=extra,
        )

    def __len__(self) -> int:
        return self.batch

    def __iter__(self) -> Iterator[SolveResult]:
        return (self.column(j) for j in range(self.batch))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockSolveResult(batch={self.batch}, "
                f"converged={int(self.converged.sum())}/{self.batch}, "
                f"block_iters={self.block_iters})")


def _col_dots(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-column inner products ``u[:, j] · v[:, j]``.

    A short Python loop over columns keeps each reduction the *same*
    BLAS call the sequential solver makes — on a **contiguous** copy,
    because BLAS picks a different accumulation path for strided views
    and the last-ulp divergence amplifies into off-by-one iteration
    counts near the convergence threshold.  The O(B) loop and copies
    are negligible next to the O(n·B) vector work.
    """
    return np.array([float(np.dot(np.ascontiguousarray(u[:, j]),
                                  np.ascontiguousarray(v[:, j])))
                     for j in range(u.shape[1])])


def _col_norms(u: np.ndarray) -> np.ndarray:
    """Per-column 2-norms (same contiguous kernel as the sequential
    solver; see :func:`_col_dots`)."""
    return np.array([float(np.linalg.norm(np.ascontiguousarray(u[:, j])))
                     for j in range(u.shape[1])])


def pcg_block(a: CSRMatrix, b_block: np.ndarray,
              preconditioner: Preconditioner | None = None, *,
              x0: np.ndarray | None = None,
              criterion: StoppingCriterion | None = None,
              callback: Callable[[int, np.ndarray], None] | None = None,
              slot_hook: SlotHook | None = None,
              keys: Sequence[object] | None = None,
              verify: VerifyConfig | None = None
              ) -> BlockSolveResult:
    """Left-preconditioned CG over an ``(n, B)`` block of right-hand sides.

    Parameters
    ----------
    a:
        SPD system matrix in CSR form, shared by every column.
    b_block:
        Right-hand sides, shape ``(n, B)`` (a 1-D vector is treated as
        ``B = 1``).
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`; identity when
        ``None``.  Applied to the whole *active* block at once — one
        wavefront sweep serves every live column.
    x0:
        Initial guesses, shape ``(n, B)`` (zero block when ``None``).
    criterion:
        Stopping rule, evaluated per column against that column's
        ``‖b‖``; the paper default when ``None``.
    callback:
        Invoked as ``callback(k, r_norms)`` after each convergence
        check, where *r_norms* is the ``(B,)`` array of latest residual
        norms (frozen columns keep their final value; under a slot hook
        the array grows as columns are admitted).  May raise
        :class:`repro.errors.AbortSolve` to stop the whole block; still-
        active columns then terminate with ``GUARD_TRIPPED``.
    slot_hook:
        Continuous-batching hook (see :data:`SlotHook`), consulted at
        every iteration boundary.  Admitted columns start at their own
        iteration 0 with a zero initial guess; each column's iteration
        budget (``criterion.max_iters``) is counted from its own
        admission, so the block may run more global sweeps than any
        single column's budget.
    keys:
        Caller handles for the initial columns (defaults to
        ``0..B-1``).  Only meaningful together with *slot_hook*; the
        final per-column keys, admission sweeps and retirement sweeps
        are returned in ``extra["serve"]``.
    verify:
        Silent-corruption detection (see :class:`VerifyConfig`).  A
        detected column freezes with ``CORRUPTED`` at its last provably
        clean state; detection counters and records are returned in
        ``extra["verify"]``.

    Returns
    -------
    BlockSolveResult
        Never raises on non-convergence; decomposes via
        :meth:`BlockSolveResult.column` into per-column results matching
        a sequential :func:`~repro.solvers.cg.pcg` loop.
    """
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("pcg_block requires a square matrix")
    b_block = np.asarray(b_block)
    if b_block.ndim == 1:
        b_block = b_block[:, None]
    if b_block.ndim != 2 or b_block.shape[0] != n:
        raise ShapeError(f"b_block must have shape ({n}, B), "
                         f"got {b_block.shape}")
    nb = b_block.shape[1]
    if nb == 0 and slot_hook is None:
        # A zero-column block is only meaningful with a slot hook: the
        # hook may admit columns (e.g. checkpoint resumes) at the first
        # boundary — the serving layer's all-retries dispatch.
        raise ShapeError("b_block must have at least one column")
    m = preconditioner if preconditioner is not None \
        else IdentityPreconditioner(n)
    if m.n != n:
        raise ShapeError("preconditioner order does not match the matrix")
    crit = criterion if criterion is not None \
        else StoppingCriterion.paper_default()

    dtype = np.result_type(a.dtype, b_block.dtype)
    x = (np.zeros((n, nb), dtype=dtype) if x0 is None
         else np.asarray(x0, dtype=dtype).copy())
    if x.shape != (n, nb):
        raise ShapeError(f"x0 must have shape ({n}, {nb})")
    if x0 is not None and not np.isfinite(x).all():
        raise InvalidRequestError(
            "x0 contains non-finite entries; a NaN/Inf warm start would "
            "silently poison every iterate")

    b_norms = _col_norms(b_block)
    thresholds = np.array([crit.threshold(bn) for bn in b_norms])

    # Per-column right-hand sides (admissions append) — the true-
    # residual detector and checkpoint restarts need b per column.
    b_cols: list[np.ndarray] = [
        np.ascontiguousarray(b_block[:, j]).astype(dtype, copy=False)
        for j in range(nb)]
    ver_stats: dict = {"n_abft_checks": 0, "n_residual_checks": 0,
                       "n_replacements": 0, "detections": []}
    abft_s = abft_abs = None
    if verify is not None and verify.abft:
        # Column sums of A straight off the CSR arrays (s = 1ᵀA) — no
        # kernel call, so an operator wrapper that corrupts SpMV
        # outputs cannot poison the checksum reference itself.
        abft_s = np.zeros(n, dtype=np.float64)
        np.add.at(abft_s, a.indices, a.data.astype(np.float64,
                                                   copy=False))
        abft_abs = np.zeros(n, dtype=np.float64)
        np.add.at(abft_abs, a.indices, np.abs(a.data).astype(
            np.float64, copy=False))
    hook_wants_view = False
    if slot_hook is not None:
        try:
            hook_wants_view = len(
                inspect.signature(slot_hook).parameters) >= 3
        except (TypeError, ValueError):  # odd callables: assume new API
            hook_wants_view = True

    # Per-column terminal state, filled in as columns retire.  Under a
    # slot hook these arrays *grow* as columns are admitted; ``born``
    # and ``died`` hold each column's admission and retirement sweep
    # (global, 1-based; 0 = before the first sweep) for the serving
    # scheduler's modeled-latency accounting.
    reasons: list[TerminationReason] = \
        [TerminationReason.MAX_ITERATIONS] * nb
    conv = np.zeros(nb, dtype=bool)
    iters = np.zeros(nb, dtype=np.int64)
    histories: list[list[float]] = [[] for _ in range(nb)]
    last_norms = np.full(nb, np.nan)
    born = np.zeros(nb, dtype=np.int64)
    died = np.zeros(nb, dtype=np.int64)
    col_keys: list[object] = (list(keys) if keys is not None
                              else list(range(nb)))
    if len(col_keys) != nb:
        raise ShapeError(f"keys must have length {nb}, "
                         f"got {len(col_keys)}")
    key_to_col = {key: j for j, key in enumerate(col_keys)}
    widths: list[int] = []
    extra: dict = {}

    def assemble() -> BlockSolveResult:
        if slot_hook is not None or keys is not None:
            extra["serve"] = {"keys": list(col_keys), "born": born.copy(),
                              "died": died.copy(),
                              "widths": list(widths)}
        if verify is not None:
            extra["verify"] = ver_stats
        res = BlockSolveResult(
            x=x, converged=conv, n_iters=iters,
            residual_norms=[np.asarray(h) for h in histories],
            reasons=reasons, tolerances=thresholds, extra=extra)
        metrics = get_metrics()
        metrics.inc("pcg.batched_solves")
        metrics.inc("pcg.batched_rhs", len(reasons))
        metrics.inc("pcg.batched_sweeps", res.block_iters)
        for j in range(len(reasons)):
            if not conv[j]:
                metrics.inc(f"pcg.batched_terminations.{reasons[j].value}")
        return res

    # r0 = b - A x0 (skip the block SpMV for the common zero guess).
    r = (b_block.astype(dtype, copy=True) if not x.any()
         else b_block - a.matmat(x))
    r0 = _col_norms(r)
    last_norms[:] = r0
    for j in range(nb):
        histories[j].append(float(r0[j]))
    if callback is not None:
        try:
            callback(0, last_norms.copy())
        except AbortSolve as exc:
            extra["abort"] = exc
            for j in range(nb):
                reasons[j] = TerminationReason.GUARD_TRIPPED
            return assemble()

    # idx maps working-set slots to original columns; xa/ra/pa/rz are the
    # compacted per-column iteration state.  ``retire`` scatters a
    # finishing column's iterate back into x and records its outcome.
    idx = np.arange(nb)

    def retire(mask: np.ndarray, xa: np.ndarray, reason: TerminationReason,
               k_done: int, converged: bool = False,
               died_at: int | None = None) -> np.ndarray:
        """Freeze columns where *mask*; returns the keep-mask.

        ``k_done`` is the *global* sweep whose state the column keeps —
        its recorded iteration count is ``k_done - born`` so columns
        admitted mid-block report their own local count.  ``died_at``
        (default ``k_done``) is the global sweep the column last
        occupied a slot in, for the scheduler's width accounting.
        """
        d = k_done if died_at is None else died_at
        for t in np.flatnonzero(mask):
            j = int(idx[t])
            x[:, j] = xa[:, t]
            reasons[j] = reason
            iters[j] = k_done - born[j]
            conv[j] = converged
            died[j] = d
        return ~mask

    def cancel_columns(cancels, k, xa, ra, pa, rz, idx):
        """Freeze the *active* columns named in ``cancels`` at boundary
        ``k`` (before sweep ``k`` runs); unknown or already-retired keys
        are ignored — cancelling a completed column is a no-op."""
        drop = np.zeros(idx.size, dtype=bool)
        for key, reason in cancels:
            j = key_to_col.get(key)
            if j is None:
                continue
            pos = np.flatnonzero(idx == j)
            if pos.size == 0:
                continue
            t = int(pos[0])
            drop[t] = True
            x[:, j] = xa[:, t]
            reasons[j] = reason
            iters[j] = (k - 1) - born[j]
            conv[j] = False
            died[j] = k - 1
        if drop.any():
            keep = ~drop
            xa, ra, pa, rz, idx = (xa[:, keep], ra[:, keep], pa[:, keep],
                                   rz[keep], idx[keep])
        return xa, ra, pa, rz, idx

    def admit_columns(admits, k, xa, ra, pa, rz, idx):
        """Start new columns at boundary ``k`` — the continuous-
        batching join point.  A ``(key, b)`` pair starts at its own
        iteration 0, mirroring the pre-loop setup exactly: residual =
        b, immediate convergence check, preconditioner application,
        breakdown check, first search direction.  A ``(key, b, x0)``
        triple with an ndarray warm start begins iteration 0 from that
        guess (residual ``b − A·x0``).  A ``(key, b, checkpoint)``
        triple resumes the column bitwise from its
        :class:`CheckpointState` — ``born`` shifts back by the
        checkpoint's earned iterations so budgets, counts and history
        lengths span both attempts."""
        nonlocal x, conv, iters, born, died, last_norms, b_norms, thresholds
        cols: list[int] = []
        vecs: list[np.ndarray] = []
        starts: list[np.ndarray | None] = []
        res_cols: list[int] = []
        res_states: list[CheckpointState] = []
        for item in admits:
            key, b_new = item[0], item[1]
            restore = item[2] if len(item) > 2 else None
            b_new = np.asarray(b_new, dtype=dtype)
            if b_new.shape != (n,):
                raise ShapeError(f"admitted b must have shape ({n},), "
                                 f"got {b_new.shape}")
            j = len(reasons)
            reasons.append(TerminationReason.MAX_ITERATIONS)
            col_keys.append(key)
            key_to_col[key] = j
            bn = float(np.linalg.norm(b_new))
            b_norms = np.append(b_norms, bn)
            thresholds = np.append(thresholds, crit.threshold(bn))
            conv = np.append(conv, False)
            iters = np.append(iters, 0)
            b_cols.append(b_new)
            x = np.concatenate([x, np.zeros((n, 1), dtype=dtype)], axis=1)
            if restore is None or isinstance(restore, np.ndarray):
                x0v = None
                r_new, rn0 = b_new, bn
                if restore is not None:
                    x0v = np.asarray(restore, dtype=dtype)
                    if x0v.shape != (n,):
                        raise ShapeError(
                            f"admitted x0 must have shape ({n},), "
                            f"got {x0v.shape}")
                    if not np.isfinite(x0v).all():
                        raise InvalidRequestError(
                            "admitted x0 contains non-finite entries")
                    if x0v.any():
                        r_new = b_new - a.matvec(x0v)
                        rn0 = float(np.linalg.norm(r_new))
                    else:
                        x0v = None
                born = np.append(born, k - 1)
                died = np.append(died, k - 1)
                histories.append([rn0])
                last_norms = np.append(last_norms, rn0)
                if crit.is_met(rn0, bn):
                    if x0v is not None:
                        x[:, j] = x0v
                    reasons[j] = TerminationReason.CONVERGED
                    conv[j] = True
                    continue
                cols.append(j)
                vecs.append(r_new)
                starts.append(x0v)
                continue
            rn0 = float(restore.history[-1])
            born = np.append(born, (k - 1) - restore.iters)
            died = np.append(died, k - 1)
            histories.append([float(v) for v in restore.history])
            last_norms = np.append(last_norms, rn0)
            iters[j] = restore.iters
            if crit.is_met(rn0, bn):
                x[:, j] = np.asarray(restore.x, dtype=dtype)
                reasons[j] = TerminationReason.CONVERGED
                conv[j] = True
                continue
            if restore.rz == 0.0 or not np.isfinite(restore.rz):
                x[:, j] = np.asarray(restore.x, dtype=dtype)
                reasons[j] = TerminationReason.NUMERICAL_BREAKDOWN
                continue
            res_cols.append(j)
            res_states.append(restore)
        if cols:
            rn = np.stack(vecs, axis=1)
            zn = m.apply(rn)
            rzn = _col_dots(rn, zn)
            bad = (rzn == 0.0) | ~np.isfinite(rzn)
            good: list[int] = []
            for t, j in enumerate(cols):
                if bad[t]:
                    reasons[j] = TerminationReason.NUMERICAL_BREAKDOWN
                else:
                    good.append(t)
            if good:
                g = np.asarray(good)
                new_cols = np.asarray(cols, dtype=idx.dtype)[g]
                idx = np.concatenate([idx, new_cols])
                xa = np.concatenate(
                    [xa, np.stack(
                        [starts[t] if starts[t] is not None
                         else np.zeros(n, dtype=dtype) for t in good],
                        axis=1)], axis=1)
                ra = np.concatenate([ra, rn[:, g]], axis=1)
                pa = np.concatenate(
                    [pa, zn[:, g].astype(dtype, copy=True)], axis=1)
                rz = np.concatenate([rz, rzn[g]])
        if res_cols:
            idx = np.concatenate(
                [idx, np.asarray(res_cols, dtype=idx.dtype)])
            xa = np.concatenate(
                [xa] + [np.asarray(s.x, dtype=dtype)[:, None]
                        for s in res_states], axis=1)
            ra = np.concatenate(
                [ra] + [np.asarray(s.r, dtype=dtype)[:, None]
                        for s in res_states], axis=1)
            pa = np.concatenate(
                [pa] + [np.asarray(s.p, dtype=dtype)[:, None]
                        for s in res_states], axis=1)
            rz = np.concatenate(
                [rz, np.asarray([s.rz for s in res_states])])
        return xa, ra, pa, rz, idx

    met0 = np.array([crit.is_met(float(r0[j]), float(b_norms[j]))
                     for j in range(nb)], dtype=bool)
    keep = retire(met0, x, TerminationReason.CONVERGED, 0, converged=True)
    idx = idx[keep]
    if idx.size == 0 and slot_hook is None:
        return assemble()

    if idx.size:
        xa = x[:, idx].copy()
        ra = r[:, idx].copy()
        za = m.apply(ra)
        rz = _col_dots(ra, za)
        bad = (rz == 0.0) | ~np.isfinite(rz)
        keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN, 0)
        idx, xa, ra, za, rz = (idx[keep], xa[:, keep], ra[:, keep],
                               za[:, keep], rz[keep])
        pa = za.astype(dtype, copy=True)
    else:
        # Every submitted column converged at iteration 0 but a slot
        # hook may still have work: enter the loop with an empty set.
        xa = np.zeros((n, 0), dtype=dtype)
        ra = np.zeros((n, 0), dtype=dtype)
        pa = np.zeros((n, 0), dtype=dtype)
        rz = np.zeros(0)

    k = 0
    pending_detected: list[dict] = []
    rec = get_recorder()
    metrics = get_metrics()

    def detect(j: int, method: str, sweep: int, err: float,
               tol: float) -> None:
        d = {"key": col_keys[j], "method": method, "sweep": sweep,
             "error": float(err), "tolerance": float(tol)}
        ver_stats["detections"].append(d)
        pending_detected.append(d)
        metrics.inc("chaos.detections")
        metrics.inc(f"chaos.detections.{method}")
        if rec.enabled:
            rec.emit("checksum_fail", key=col_keys[j], method=method,
                     sweep=sweep, error=float(err), tolerance=float(tol))

    while True:
        k += 1
        # ---- iteration boundary k (before sweep k runs) --------------
        # True-residual verification first, so the hook's BoundaryView
        # sees exactly which columns are proven consistent (safe to
        # checkpoint) and which just got caught drifting.
        verified_keys: tuple = ()
        if (verify is not None and verify.residual_check_every
                and idx.size):
            local = (k - 1) - born[idx]
            due = np.flatnonzero(
                (local > 0) & (local % verify.residual_check_every == 0))
            if due.size:
                ver_stats["n_residual_checks"] += int(due.size)
                sub = idx[due]
                bt = np.stack([b_cols[int(j)] for j in sub], axis=1)
                r_true = bt - a.matmat(np.ascontiguousarray(xa[:, due]))
                drift = _col_norms(r_true - ra[:, due])
                tol = verify.residual_rtol * b_norms[sub]
                badv = ~np.isfinite(drift) | (drift > tol)
                ok = due[~badv]
                verified_keys = tuple(col_keys[int(j)] for j in idx[ok])
                if verify.replace and ok.size:
                    # Residual replacement: adopt the true residual and
                    # restart the search direction (van der Vorst).
                    ver_stats["n_replacements"] += int(ok.size)
                    ra[:, ok] = r_true[:, ~badv]
                    zn = m.apply(np.ascontiguousarray(ra[:, ok]))
                    pa[:, ok] = zn.astype(dtype, copy=False)
                    rz[ok] = _col_dots(ra[:, ok], zn)
                if badv.any():
                    for u in np.flatnonzero(badv):
                        detect(int(idx[int(due[u])]), "residual", k,
                               float(drift[u]), float(tol[u]))
                    mask = np.zeros(idx.size, dtype=bool)
                    mask[due[badv]] = True
                    keep = retire(mask, xa, TerminationReason.CORRUPTED,
                                  k - 1, died_at=k - 1)
                    idx, xa, ra, pa, rz = (idx[keep], xa[:, keep],
                                           ra[:, keep], pa[:, keep],
                                           rz[keep])
        if slot_hook is not None:
            active_keys = tuple(col_keys[int(j)] for j in idx)
            if hook_wants_view:
                def capture(key: object, _k: int = k) -> CheckpointState:
                    j = key_to_col.get(key)
                    pos = (np.flatnonzero(idx == j)
                           if j is not None else np.empty(0))
                    if j is None or pos.size == 0:
                        raise KeyError(
                            f"column {key!r} is not active at this "
                            f"boundary")
                    t = int(pos[0])
                    return CheckpointState(
                        x=xa[:, t].copy(), r=ra[:, t].copy(),
                        p=pa[:, t].copy(), rz=float(rz[t]),
                        iters=int((_k - 1) - born[j]),
                        history=tuple(histories[j]))

                view = BoundaryView(k, verified_keys,
                                    tuple(pending_detected), capture)
                decision = slot_hook(k, active_keys, view)
            else:
                decision = slot_hook(k, active_keys)
            if decision is not None:
                if decision.cancel:
                    xa, ra, pa, rz, idx = cancel_columns(
                        decision.cancel, k, xa, ra, pa, rz, idx)
                if decision.admit:
                    xa, ra, pa, rz, idx = admit_columns(
                        decision.admit, k, xa, ra, pa, rz, idx)
        pending_detected = []
        if idx.size == 0:
            break
        # Entering width of sweep k — a column that retires mid-sweep
        # still occupied its slot for the whole sweep, so this is the
        # batch size the scheduler prices the sweep at.
        widths.append(int(idx.size))
        wa = a.matmat(pa)
        if abft_s is not None:
            # ABFT column checksums: 1ᵀ(A·p)_j must match (1ᵀA)·p_j to
            # a rounding-scaled tolerance.  A mismatch (or a non-finite
            # sum — transient kernel garbage) freezes the column at its
            # pre-sweep state, which the checksum just proved clean.
            ver_stats["n_abft_checks"] += 1
            err = np.abs(wa.sum(axis=0) - abft_s @ pa)
            tol = verify.abft_rtol * (abft_abs @ np.abs(pa))
            badc = ~np.isfinite(err) | (err > tol)
            if badc.any():
                for t in np.flatnonzero(badc):
                    detect(int(idx[int(t)]), "abft", k,
                           float(err[t]), float(tol[t]))
                keep = retire(badc, xa, TerminationReason.CORRUPTED,
                              k - 1, died_at=k)
                idx, xa, ra, pa, wa, rz = (
                    idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                    wa[:, keep], rz[keep])
                if idx.size == 0:
                    continue
        pw = _col_dots(pa, wa)
        # Curvature checks freeze a column *before* the update (its
        # iterate stays at k-1 completed iterations, no norm appended).
        bad = ~np.isfinite(pw)
        indef = np.isfinite(pw) & (pw <= 0.0)
        if bad.any() or indef.any():
            keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN,
                          k - 1, died_at=k)
            keep &= retire(indef, xa, TerminationReason.INDEFINITE, k - 1,
                           died_at=k)
            idx, xa, ra, pa, wa, rz, pw = (
                idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                wa[:, keep], rz[keep], pw[keep])
            if idx.size == 0:
                continue
        alpha = rz / pw
        xa += alpha * pa
        ra -= alpha * wa
        rnorm = _col_norms(ra)
        last_norms[idx] = rnorm
        for t, j in enumerate(idx):
            histories[j].append(float(rnorm[t]))
        if callback is not None:
            try:
                callback(k, last_norms.copy())
            except AbortSolve as exc:
                extra["abort"] = exc
                retire(np.ones(idx.size, dtype=bool),
                       xa, TerminationReason.GUARD_TRIPPED, k)
                idx = idx[:0]
                break
        nan = ~np.isfinite(rnorm)
        met = np.array([crit.is_met(float(rnorm[t]),
                                    float(b_norms[idx[t]]))
                        for t in range(idx.size)])
        met &= ~nan
        if nan.any() or met.any():
            keep = retire(nan, xa, TerminationReason.NUMERICAL_BREAKDOWN, k)
            keep &= retire(met, xa, TerminationReason.CONVERGED, k,
                           converged=True)
            idx, xa, ra, pa, rz = (idx[keep], xa[:, keep], ra[:, keep],
                                   pa[:, keep], rz[keep])
            if idx.size == 0:
                continue
        za = m.apply(ra)
        rz_new = _col_dots(ra, za)
        bad = (rz_new == 0.0) | ~np.isfinite(rz_new)
        if bad.any():
            keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN, k)
            idx, xa, ra, pa, za, rz, rz_new = (
                idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                za[:, keep], rz[keep], rz_new[keep])
            if idx.size == 0:
                continue
        beta = rz_new / rz
        rz = rz_new
        pa = za + beta * pa
        # Per-column budget: a column admitted at sweep s exhausts its
        # own ``max_iters`` at global sweep ``s + max_iters`` — the
        # uniform-born case reproduces the classic loop bound exactly.
        exhausted = (k - born[idx]) >= crit.max_iters
        if exhausted.any():
            keep = retire(exhausted, xa,
                          TerminationReason.MAX_ITERATIONS, k)
            idx, xa, ra, pa, rz = (idx[keep], xa[:, keep], ra[:, keep],
                                   pa[:, keep], rz[keep])

    return assemble()
