"""Batched multi-RHS preconditioned conjugate gradient.

:func:`pcg_block` runs Algorithm 1 over an ``(n, B)`` block of
right-hand sides simultaneously.  The paper's speedup story is
amortizing per-wavefront synchronization; the same amortization applies
across right-hand sides: one level-scheduled triangular sweep over the
block pays the wavefront barriers once for all ``B`` solves (the
``B``-fold launch/sync saving :func:`repro.machine.kernels.
iteration_cost_batched` prices), which is the batching lever multi-
request throughput lives on — the same grouping-to-cut-synchronizations
idea as communication-reduced CG variants on GPU clusters.

Semantics
---------
Every column evolves with its *own* alpha/beta (scalars per column, not
a block Krylov method), its own convergence check against the stopping
criterion, and its own breakdown classification.  A column that
terminates — converged, indefinite curvature, numerical breakdown — is
**frozen**: it leaves the working set and is never recomputed, exactly
as if its sequential :func:`repro.solvers.cg.pcg` loop had stopped.
The result therefore decomposes into per-column
:class:`~repro.solvers.result.SolveResult` records matching a
sequential ``pcg`` loop (bitwise, up to the reduction kernels; within
1e-10 in the property tests).

Continuous batching
-------------------
A *slot hook* (:data:`SlotHook`) turns the static block into a rolling
one: at every iteration boundary the hook may **admit** new right-hand
sides into slots freed by retired columns and **cancel** running
columns (deadline expiry, caller cancellation).  An admitted column
starts its own iteration 0 at that boundary — zero initial guess, its
own residual history, its own stopping threshold — so its trajectory is
the one a fresh sequential solve would take; resident columns are never
recomputed or perturbed (their per-column scalars and reductions do not
see the newcomer).  :mod:`repro.serve` builds its online scheduler on
this hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from ..errors import AbortSolve, ShapeError
from ..obs.metrics import get_metrics
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..solvers.result import SolveResult, TerminationReason
from ..solvers.stopping import StoppingCriterion
from ..sparse.csr import CSRMatrix

__all__ = ["BlockSolveResult", "SlotDecision", "SlotHook", "pcg_block"]


@dataclass
class SlotDecision:
    """What a slot hook wants done at one iteration boundary.

    Attributes
    ----------
    admit:
        ``(key, b)`` pairs to admit as new columns (zero initial guess).
        *key* is the caller's opaque handle (a request id); it comes
        back in ``extra["serve"]["keys"]``.
    cancel:
        ``(key, reason)`` pairs; each matching **active** column is
        frozen at the boundary with that termination reason and the
        iterate it has already earned.  Keys that are unknown or already
        retired are ignored — cancelling a completed column is a no-op
        by construction.
    """

    admit: Sequence[tuple[object, np.ndarray]] = ()
    cancel: Sequence[tuple[object, TerminationReason]] = ()

    def __bool__(self) -> bool:
        return bool(self.admit) or bool(self.cancel)


#: Called as ``hook(sweep, active_keys)`` at the boundary *before*
#: sweep ``sweep`` runs (1-based).  ``active_keys`` is the tuple of
#: keys of live columns before the decision is applied, so the caller
#: always knows exactly which of its requests still occupy slots; the
#: hook owns any notion of time (the serving scheduler advances its
#: modeled clock here).  Returning ``None`` means "no changes".  When
#: the working set is empty and the hook admits nothing, the block
#: ends.
SlotHook = Callable[[int, "tuple[object, ...]"], "SlotDecision | None"]


@dataclass
class BlockSolveResult:
    """Outcome of one block PCG solve over ``B`` right-hand sides.

    Attributes
    ----------
    x:
        Final iterates, shape ``(n, B)`` (best effort per column).
    converged:
        Boolean array ``(B,)``.
    n_iters:
        Completed iterations per column, ``(B,)``.
    residual_norms:
        Per column, the residual 2-norm history (length
        ``n_iters[j] + 1``) — frozen columns stop accumulating.
    reasons:
        Per-column :class:`~repro.solvers.result.TerminationReason`.
    tolerances:
        Per-column absolute residual thresholds actually used.
    """

    x: np.ndarray
    converged: np.ndarray
    n_iters: np.ndarray
    residual_norms: list[np.ndarray]
    reasons: list[TerminationReason]
    tolerances: np.ndarray
    extra: dict = field(default_factory=dict)

    @property
    def batch(self) -> int:
        """Number of right-hand sides ``B``."""
        return int(self.x.shape[1])

    @property
    def block_iters(self) -> int:
        """Wavefront sweeps the block actually performed — the maximum
        per-column iteration count (frozen columns ride along for free)."""
        return int(self.n_iters.max()) if self.n_iters.size else 0

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    def column(self, j: int) -> SolveResult:
        """Decompose into the per-column :class:`SolveResult`."""
        extra = dict(self.extra) \
            if self.reasons[j] is TerminationReason.GUARD_TRIPPED else {}
        return SolveResult(
            x=self.x[:, j].copy(),
            converged=bool(self.converged[j]),
            n_iters=int(self.n_iters[j]),
            residual_norms=np.asarray(self.residual_norms[j]),
            reason=self.reasons[j],
            tolerance=float(self.tolerances[j]),
            extra=extra,
        )

    def __len__(self) -> int:
        return self.batch

    def __iter__(self) -> Iterator[SolveResult]:
        return (self.column(j) for j in range(self.batch))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockSolveResult(batch={self.batch}, "
                f"converged={int(self.converged.sum())}/{self.batch}, "
                f"block_iters={self.block_iters})")


def _col_dots(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-column inner products ``u[:, j] · v[:, j]``.

    A short Python loop over columns keeps each reduction the *same*
    BLAS call the sequential solver makes — on a **contiguous** copy,
    because BLAS picks a different accumulation path for strided views
    and the last-ulp divergence amplifies into off-by-one iteration
    counts near the convergence threshold.  The O(B) loop and copies
    are negligible next to the O(n·B) vector work.
    """
    return np.array([float(np.dot(np.ascontiguousarray(u[:, j]),
                                  np.ascontiguousarray(v[:, j])))
                     for j in range(u.shape[1])])


def _col_norms(u: np.ndarray) -> np.ndarray:
    """Per-column 2-norms (same contiguous kernel as the sequential
    solver; see :func:`_col_dots`)."""
    return np.array([float(np.linalg.norm(np.ascontiguousarray(u[:, j])))
                     for j in range(u.shape[1])])


def pcg_block(a: CSRMatrix, b_block: np.ndarray,
              preconditioner: Preconditioner | None = None, *,
              x0: np.ndarray | None = None,
              criterion: StoppingCriterion | None = None,
              callback: Callable[[int, np.ndarray], None] | None = None,
              slot_hook: SlotHook | None = None,
              keys: Sequence[object] | None = None
              ) -> BlockSolveResult:
    """Left-preconditioned CG over an ``(n, B)`` block of right-hand sides.

    Parameters
    ----------
    a:
        SPD system matrix in CSR form, shared by every column.
    b_block:
        Right-hand sides, shape ``(n, B)`` (a 1-D vector is treated as
        ``B = 1``).
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`; identity when
        ``None``.  Applied to the whole *active* block at once — one
        wavefront sweep serves every live column.
    x0:
        Initial guesses, shape ``(n, B)`` (zero block when ``None``).
    criterion:
        Stopping rule, evaluated per column against that column's
        ``‖b‖``; the paper default when ``None``.
    callback:
        Invoked as ``callback(k, r_norms)`` after each convergence
        check, where *r_norms* is the ``(B,)`` array of latest residual
        norms (frozen columns keep their final value; under a slot hook
        the array grows as columns are admitted).  May raise
        :class:`repro.errors.AbortSolve` to stop the whole block; still-
        active columns then terminate with ``GUARD_TRIPPED``.
    slot_hook:
        Continuous-batching hook (see :data:`SlotHook`), consulted at
        every iteration boundary.  Admitted columns start at their own
        iteration 0 with a zero initial guess; each column's iteration
        budget (``criterion.max_iters``) is counted from its own
        admission, so the block may run more global sweeps than any
        single column's budget.
    keys:
        Caller handles for the initial columns (defaults to
        ``0..B-1``).  Only meaningful together with *slot_hook*; the
        final per-column keys, admission sweeps and retirement sweeps
        are returned in ``extra["serve"]``.

    Returns
    -------
    BlockSolveResult
        Never raises on non-convergence; decomposes via
        :meth:`BlockSolveResult.column` into per-column results matching
        a sequential :func:`~repro.solvers.cg.pcg` loop.
    """
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("pcg_block requires a square matrix")
    b_block = np.asarray(b_block)
    if b_block.ndim == 1:
        b_block = b_block[:, None]
    if b_block.ndim != 2 or b_block.shape[0] != n:
        raise ShapeError(f"b_block must have shape ({n}, B), "
                         f"got {b_block.shape}")
    nb = b_block.shape[1]
    if nb == 0:
        raise ShapeError("b_block must have at least one column")
    m = preconditioner if preconditioner is not None \
        else IdentityPreconditioner(n)
    if m.n != n:
        raise ShapeError("preconditioner order does not match the matrix")
    crit = criterion if criterion is not None \
        else StoppingCriterion.paper_default()

    dtype = np.result_type(a.dtype, b_block.dtype)
    x = (np.zeros((n, nb), dtype=dtype) if x0 is None
         else np.asarray(x0, dtype=dtype).copy())
    if x.shape != (n, nb):
        raise ShapeError(f"x0 must have shape ({n}, {nb})")

    b_norms = _col_norms(b_block)
    thresholds = np.array([crit.threshold(bn) for bn in b_norms])

    # Per-column terminal state, filled in as columns retire.  Under a
    # slot hook these arrays *grow* as columns are admitted; ``born``
    # and ``died`` hold each column's admission and retirement sweep
    # (global, 1-based; 0 = before the first sweep) for the serving
    # scheduler's modeled-latency accounting.
    reasons: list[TerminationReason] = \
        [TerminationReason.MAX_ITERATIONS] * nb
    conv = np.zeros(nb, dtype=bool)
    iters = np.zeros(nb, dtype=np.int64)
    histories: list[list[float]] = [[] for _ in range(nb)]
    last_norms = np.full(nb, np.nan)
    born = np.zeros(nb, dtype=np.int64)
    died = np.zeros(nb, dtype=np.int64)
    col_keys: list[object] = (list(keys) if keys is not None
                              else list(range(nb)))
    if len(col_keys) != nb:
        raise ShapeError(f"keys must have length {nb}, "
                         f"got {len(col_keys)}")
    key_to_col = {key: j for j, key in enumerate(col_keys)}
    widths: list[int] = []
    extra: dict = {}

    def assemble() -> BlockSolveResult:
        if slot_hook is not None or keys is not None:
            extra["serve"] = {"keys": list(col_keys), "born": born.copy(),
                              "died": died.copy(),
                              "widths": list(widths)}
        res = BlockSolveResult(
            x=x, converged=conv, n_iters=iters,
            residual_norms=[np.asarray(h) for h in histories],
            reasons=reasons, tolerances=thresholds, extra=extra)
        metrics = get_metrics()
        metrics.inc("pcg.batched_solves")
        metrics.inc("pcg.batched_rhs", len(reasons))
        metrics.inc("pcg.batched_sweeps", res.block_iters)
        for j in range(len(reasons)):
            if not conv[j]:
                metrics.inc(f"pcg.batched_terminations.{reasons[j].value}")
        return res

    # r0 = b - A x0 (skip the block SpMV for the common zero guess).
    r = (b_block.astype(dtype, copy=True) if not x.any()
         else b_block - a.matmat(x))
    r0 = _col_norms(r)
    last_norms[:] = r0
    for j in range(nb):
        histories[j].append(float(r0[j]))
    if callback is not None:
        try:
            callback(0, last_norms.copy())
        except AbortSolve as exc:
            extra["abort"] = exc
            for j in range(nb):
                reasons[j] = TerminationReason.GUARD_TRIPPED
            return assemble()

    # idx maps working-set slots to original columns; xa/ra/pa/rz are the
    # compacted per-column iteration state.  ``retire`` scatters a
    # finishing column's iterate back into x and records its outcome.
    idx = np.arange(nb)

    def retire(mask: np.ndarray, xa: np.ndarray, reason: TerminationReason,
               k_done: int, converged: bool = False,
               died_at: int | None = None) -> np.ndarray:
        """Freeze columns where *mask*; returns the keep-mask.

        ``k_done`` is the *global* sweep whose state the column keeps —
        its recorded iteration count is ``k_done - born`` so columns
        admitted mid-block report their own local count.  ``died_at``
        (default ``k_done``) is the global sweep the column last
        occupied a slot in, for the scheduler's width accounting.
        """
        d = k_done if died_at is None else died_at
        for t in np.flatnonzero(mask):
            j = int(idx[t])
            x[:, j] = xa[:, t]
            reasons[j] = reason
            iters[j] = k_done - born[j]
            conv[j] = converged
            died[j] = d
        return ~mask

    def cancel_columns(cancels, k, xa, ra, pa, rz, idx):
        """Freeze the *active* columns named in ``cancels`` at boundary
        ``k`` (before sweep ``k`` runs); unknown or already-retired keys
        are ignored — cancelling a completed column is a no-op."""
        drop = np.zeros(idx.size, dtype=bool)
        for key, reason in cancels:
            j = key_to_col.get(key)
            if j is None:
                continue
            pos = np.flatnonzero(idx == j)
            if pos.size == 0:
                continue
            t = int(pos[0])
            drop[t] = True
            x[:, j] = xa[:, t]
            reasons[j] = reason
            iters[j] = (k - 1) - born[j]
            conv[j] = False
            died[j] = k - 1
        if drop.any():
            keep = ~drop
            xa, ra, pa, rz, idx = (xa[:, keep], ra[:, keep], pa[:, keep],
                                   rz[keep], idx[keep])
        return xa, ra, pa, rz, idx

    def admit_columns(admits, k, xa, ra, pa, rz, idx):
        """Start new columns at their own iteration 0 (zero initial
        guess) at boundary ``k`` — the continuous-batching join point.
        Mirrors the pre-loop setup exactly: residual = b, immediate
        convergence check, preconditioner application, breakdown check,
        first search direction."""
        nonlocal x, conv, iters, born, died, last_norms, b_norms, thresholds
        cols: list[int] = []
        vecs: list[np.ndarray] = []
        for key, b_new in admits:
            b_new = np.asarray(b_new, dtype=dtype)
            if b_new.shape != (n,):
                raise ShapeError(f"admitted b must have shape ({n},), "
                                 f"got {b_new.shape}")
            j = len(reasons)
            reasons.append(TerminationReason.MAX_ITERATIONS)
            col_keys.append(key)
            key_to_col[key] = j
            bn = float(np.linalg.norm(b_new))
            b_norms = np.append(b_norms, bn)
            thresholds = np.append(thresholds, crit.threshold(bn))
            conv = np.append(conv, False)
            iters = np.append(iters, 0)
            born = np.append(born, k - 1)
            died = np.append(died, k - 1)
            histories.append([bn])
            last_norms = np.append(last_norms, bn)
            x = np.concatenate([x, np.zeros((n, 1), dtype=dtype)], axis=1)
            if crit.is_met(bn, bn):
                reasons[j] = TerminationReason.CONVERGED
                conv[j] = True
                continue
            cols.append(j)
            vecs.append(b_new)
        if not cols:
            return xa, ra, pa, rz, idx
        rn = np.stack(vecs, axis=1)
        zn = m.apply(rn)
        rzn = _col_dots(rn, zn)
        bad = (rzn == 0.0) | ~np.isfinite(rzn)
        good: list[int] = []
        for t, j in enumerate(cols):
            if bad[t]:
                reasons[j] = TerminationReason.NUMERICAL_BREAKDOWN
            else:
                good.append(t)
        if good:
            g = np.asarray(good)
            new_cols = np.asarray(cols, dtype=idx.dtype)[g]
            idx = np.concatenate([idx, new_cols])
            xa = np.concatenate(
                [xa, np.zeros((n, g.size), dtype=dtype)], axis=1)
            ra = np.concatenate([ra, rn[:, g]], axis=1)
            pa = np.concatenate(
                [pa, zn[:, g].astype(dtype, copy=True)], axis=1)
            rz = np.concatenate([rz, rzn[g]])
        return xa, ra, pa, rz, idx

    met0 = np.array([crit.is_met(float(r0[j]), float(b_norms[j]))
                     for j in range(nb)])
    keep = retire(met0, x, TerminationReason.CONVERGED, 0, converged=True)
    idx = idx[keep]
    if idx.size == 0 and slot_hook is None:
        return assemble()

    if idx.size:
        xa = x[:, idx].copy()
        ra = r[:, idx].copy()
        za = m.apply(ra)
        rz = _col_dots(ra, za)
        bad = (rz == 0.0) | ~np.isfinite(rz)
        keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN, 0)
        idx, xa, ra, za, rz = (idx[keep], xa[:, keep], ra[:, keep],
                               za[:, keep], rz[keep])
        pa = za.astype(dtype, copy=True)
    else:
        # Every submitted column converged at iteration 0 but a slot
        # hook may still have work: enter the loop with an empty set.
        xa = np.zeros((n, 0), dtype=dtype)
        ra = np.zeros((n, 0), dtype=dtype)
        pa = np.zeros((n, 0), dtype=dtype)
        rz = np.zeros(0)

    k = 0
    while True:
        k += 1
        # ---- iteration boundary k (before sweep k runs) --------------
        if slot_hook is not None:
            decision = slot_hook(
                k, tuple(col_keys[int(j)] for j in idx))
            if decision is not None:
                if decision.cancel:
                    xa, ra, pa, rz, idx = cancel_columns(
                        decision.cancel, k, xa, ra, pa, rz, idx)
                if decision.admit:
                    xa, ra, pa, rz, idx = admit_columns(
                        decision.admit, k, xa, ra, pa, rz, idx)
        if idx.size == 0:
            break
        # Entering width of sweep k — a column that retires mid-sweep
        # still occupied its slot for the whole sweep, so this is the
        # batch size the scheduler prices the sweep at.
        widths.append(int(idx.size))
        wa = a.matmat(pa)
        pw = _col_dots(pa, wa)
        # Curvature checks freeze a column *before* the update (its
        # iterate stays at k-1 completed iterations, no norm appended).
        bad = ~np.isfinite(pw)
        indef = np.isfinite(pw) & (pw <= 0.0)
        if bad.any() or indef.any():
            keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN,
                          k - 1, died_at=k)
            keep &= retire(indef, xa, TerminationReason.INDEFINITE, k - 1,
                           died_at=k)
            idx, xa, ra, pa, wa, rz, pw = (
                idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                wa[:, keep], rz[keep], pw[keep])
            if idx.size == 0:
                continue
        alpha = rz / pw
        xa += alpha * pa
        ra -= alpha * wa
        rnorm = _col_norms(ra)
        last_norms[idx] = rnorm
        for t, j in enumerate(idx):
            histories[j].append(float(rnorm[t]))
        if callback is not None:
            try:
                callback(k, last_norms.copy())
            except AbortSolve as exc:
                extra["abort"] = exc
                retire(np.ones(idx.size, dtype=bool),
                       xa, TerminationReason.GUARD_TRIPPED, k)
                idx = idx[:0]
                break
        nan = ~np.isfinite(rnorm)
        met = np.array([crit.is_met(float(rnorm[t]),
                                    float(b_norms[idx[t]]))
                        for t in range(idx.size)])
        met &= ~nan
        if nan.any() or met.any():
            keep = retire(nan, xa, TerminationReason.NUMERICAL_BREAKDOWN, k)
            keep &= retire(met, xa, TerminationReason.CONVERGED, k,
                           converged=True)
            idx, xa, ra, pa, rz = (idx[keep], xa[:, keep], ra[:, keep],
                                   pa[:, keep], rz[keep])
            if idx.size == 0:
                continue
        za = m.apply(ra)
        rz_new = _col_dots(ra, za)
        bad = (rz_new == 0.0) | ~np.isfinite(rz_new)
        if bad.any():
            keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN, k)
            idx, xa, ra, pa, za, rz, rz_new = (
                idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                za[:, keep], rz[keep], rz_new[keep])
            if idx.size == 0:
                continue
        beta = rz_new / rz
        rz = rz_new
        pa = za + beta * pa
        # Per-column budget: a column admitted at sweep s exhausts its
        # own ``max_iters`` at global sweep ``s + max_iters`` — the
        # uniform-born case reproduces the classic loop bound exactly.
        exhausted = (k - born[idx]) >= crit.max_iters
        if exhausted.any():
            keep = retire(exhausted, xa,
                          TerminationReason.MAX_ITERATIONS, k)
            idx, xa, ra, pa, rz = (idx[keep], xa[:, keep], ra[:, keep],
                                   pa[:, keep], rz[keep])

    return assemble()
