"""Batched multi-RHS preconditioned conjugate gradient.

:func:`pcg_block` runs Algorithm 1 over an ``(n, B)`` block of
right-hand sides simultaneously.  The paper's speedup story is
amortizing per-wavefront synchronization; the same amortization applies
across right-hand sides: one level-scheduled triangular sweep over the
block pays the wavefront barriers once for all ``B`` solves (the
``B``-fold launch/sync saving :func:`repro.machine.kernels.
iteration_cost_batched` prices), which is the batching lever multi-
request throughput lives on — the same grouping-to-cut-synchronizations
idea as communication-reduced CG variants on GPU clusters.

Semantics
---------
Every column evolves with its *own* alpha/beta (scalars per column, not
a block Krylov method), its own convergence check against the stopping
criterion, and its own breakdown classification.  A column that
terminates — converged, indefinite curvature, numerical breakdown — is
**frozen**: it leaves the working set and is never recomputed, exactly
as if its sequential :func:`repro.solvers.cg.pcg` loop had stopped.
The result therefore decomposes into per-column
:class:`~repro.solvers.result.SolveResult` records matching a
sequential ``pcg`` loop (bitwise, up to the reduction kernels; within
1e-10 in the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..errors import AbortSolve, ShapeError
from ..obs.metrics import get_metrics
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..solvers.result import SolveResult, TerminationReason
from ..solvers.stopping import StoppingCriterion
from ..sparse.csr import CSRMatrix

__all__ = ["BlockSolveResult", "pcg_block"]


@dataclass
class BlockSolveResult:
    """Outcome of one block PCG solve over ``B`` right-hand sides.

    Attributes
    ----------
    x:
        Final iterates, shape ``(n, B)`` (best effort per column).
    converged:
        Boolean array ``(B,)``.
    n_iters:
        Completed iterations per column, ``(B,)``.
    residual_norms:
        Per column, the residual 2-norm history (length
        ``n_iters[j] + 1``) — frozen columns stop accumulating.
    reasons:
        Per-column :class:`~repro.solvers.result.TerminationReason`.
    tolerances:
        Per-column absolute residual thresholds actually used.
    """

    x: np.ndarray
    converged: np.ndarray
    n_iters: np.ndarray
    residual_norms: list[np.ndarray]
    reasons: list[TerminationReason]
    tolerances: np.ndarray
    extra: dict = field(default_factory=dict)

    @property
    def batch(self) -> int:
        """Number of right-hand sides ``B``."""
        return int(self.x.shape[1])

    @property
    def block_iters(self) -> int:
        """Wavefront sweeps the block actually performed — the maximum
        per-column iteration count (frozen columns ride along for free)."""
        return int(self.n_iters.max()) if self.n_iters.size else 0

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    def column(self, j: int) -> SolveResult:
        """Decompose into the per-column :class:`SolveResult`."""
        extra = dict(self.extra) \
            if self.reasons[j] is TerminationReason.GUARD_TRIPPED else {}
        return SolveResult(
            x=self.x[:, j].copy(),
            converged=bool(self.converged[j]),
            n_iters=int(self.n_iters[j]),
            residual_norms=np.asarray(self.residual_norms[j]),
            reason=self.reasons[j],
            tolerance=float(self.tolerances[j]),
            extra=extra,
        )

    def __len__(self) -> int:
        return self.batch

    def __iter__(self) -> Iterator[SolveResult]:
        return (self.column(j) for j in range(self.batch))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockSolveResult(batch={self.batch}, "
                f"converged={int(self.converged.sum())}/{self.batch}, "
                f"block_iters={self.block_iters})")


def _col_dots(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-column inner products ``u[:, j] · v[:, j]``.

    A short Python loop over columns keeps each reduction the *same*
    BLAS call the sequential solver makes — on a **contiguous** copy,
    because BLAS picks a different accumulation path for strided views
    and the last-ulp divergence amplifies into off-by-one iteration
    counts near the convergence threshold.  The O(B) loop and copies
    are negligible next to the O(n·B) vector work.
    """
    return np.array([float(np.dot(np.ascontiguousarray(u[:, j]),
                                  np.ascontiguousarray(v[:, j])))
                     for j in range(u.shape[1])])


def _col_norms(u: np.ndarray) -> np.ndarray:
    """Per-column 2-norms (same contiguous kernel as the sequential
    solver; see :func:`_col_dots`)."""
    return np.array([float(np.linalg.norm(np.ascontiguousarray(u[:, j])))
                     for j in range(u.shape[1])])


def pcg_block(a: CSRMatrix, b_block: np.ndarray,
              preconditioner: Preconditioner | None = None, *,
              x0: np.ndarray | None = None,
              criterion: StoppingCriterion | None = None,
              callback: Callable[[int, np.ndarray], None] | None = None
              ) -> BlockSolveResult:
    """Left-preconditioned CG over an ``(n, B)`` block of right-hand sides.

    Parameters
    ----------
    a:
        SPD system matrix in CSR form, shared by every column.
    b_block:
        Right-hand sides, shape ``(n, B)`` (a 1-D vector is treated as
        ``B = 1``).
    preconditioner:
        Any :class:`~repro.precond.base.Preconditioner`; identity when
        ``None``.  Applied to the whole *active* block at once — one
        wavefront sweep serves every live column.
    x0:
        Initial guesses, shape ``(n, B)`` (zero block when ``None``).
    criterion:
        Stopping rule, evaluated per column against that column's
        ``‖b‖``; the paper default when ``None``.
    callback:
        Invoked as ``callback(k, r_norms)`` after each convergence
        check, where *r_norms* is the ``(B,)`` array of latest residual
        norms (frozen columns keep their final value).  May raise
        :class:`repro.errors.AbortSolve` to stop the whole block; still-
        active columns then terminate with ``GUARD_TRIPPED``.

    Returns
    -------
    BlockSolveResult
        Never raises on non-convergence; decomposes via
        :meth:`BlockSolveResult.column` into per-column results matching
        a sequential :func:`~repro.solvers.cg.pcg` loop.
    """
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("pcg_block requires a square matrix")
    b_block = np.asarray(b_block)
    if b_block.ndim == 1:
        b_block = b_block[:, None]
    if b_block.ndim != 2 or b_block.shape[0] != n:
        raise ShapeError(f"b_block must have shape ({n}, B), "
                         f"got {b_block.shape}")
    nb = b_block.shape[1]
    if nb == 0:
        raise ShapeError("b_block must have at least one column")
    m = preconditioner if preconditioner is not None \
        else IdentityPreconditioner(n)
    if m.n != n:
        raise ShapeError("preconditioner order does not match the matrix")
    crit = criterion if criterion is not None \
        else StoppingCriterion.paper_default()

    dtype = np.result_type(a.dtype, b_block.dtype)
    x = (np.zeros((n, nb), dtype=dtype) if x0 is None
         else np.asarray(x0, dtype=dtype).copy())
    if x.shape != (n, nb):
        raise ShapeError(f"x0 must have shape ({n}, {nb})")

    b_norms = _col_norms(b_block)
    thresholds = np.array([crit.threshold(bn) for bn in b_norms])

    # Per-column terminal state, filled in as columns retire.
    reasons: list[TerminationReason] = \
        [TerminationReason.MAX_ITERATIONS] * nb
    conv = np.zeros(nb, dtype=bool)
    iters = np.zeros(nb, dtype=np.int64)
    histories: list[list[float]] = [[] for _ in range(nb)]
    last_norms = np.full(nb, np.nan)
    extra: dict = {}

    def assemble() -> BlockSolveResult:
        res = BlockSolveResult(
            x=x, converged=conv, n_iters=iters,
            residual_norms=[np.asarray(h) for h in histories],
            reasons=reasons, tolerances=thresholds, extra=extra)
        metrics = get_metrics()
        metrics.inc("pcg.batched_solves")
        metrics.inc("pcg.batched_rhs", nb)
        metrics.inc("pcg.batched_sweeps", res.block_iters)
        for j in range(nb):
            if not conv[j]:
                metrics.inc(f"pcg.batched_terminations.{reasons[j].value}")
        return res

    # r0 = b - A x0 (skip the block SpMV for the common zero guess).
    r = (b_block.astype(dtype, copy=True) if not x.any()
         else b_block - a.matmat(x))
    r0 = _col_norms(r)
    last_norms[:] = r0
    for j in range(nb):
        histories[j].append(float(r0[j]))
    if callback is not None:
        try:
            callback(0, last_norms.copy())
        except AbortSolve as exc:
            extra["abort"] = exc
            for j in range(nb):
                reasons[j] = TerminationReason.GUARD_TRIPPED
            return assemble()

    # idx maps working-set slots to original columns; xa/ra/pa/rz are the
    # compacted per-column iteration state.  ``retire`` scatters a
    # finishing column's iterate back into x and records its outcome.
    idx = np.arange(nb)

    def retire(mask: np.ndarray, xa: np.ndarray, reason: TerminationReason,
               k_done: int, converged: bool = False) -> np.ndarray:
        """Freeze columns where *mask*; returns the keep-mask."""
        for t in np.flatnonzero(mask):
            j = int(idx[t])
            x[:, j] = xa[:, t]
            reasons[j] = reason
            iters[j] = k_done
            conv[j] = converged
        return ~mask

    met0 = np.array([crit.is_met(float(r0[j]), float(b_norms[j]))
                     for j in range(nb)])
    keep = retire(met0, x, TerminationReason.CONVERGED, 0, converged=True)
    idx = idx[keep]
    if idx.size == 0:
        return assemble()

    xa = x[:, idx].copy()
    ra = r[:, idx].copy()
    za = m.apply(ra)
    rz = _col_dots(ra, za)
    bad = (rz == 0.0) | ~np.isfinite(rz)
    keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN, 0)
    idx, xa, ra, za, rz = (idx[keep], xa[:, keep], ra[:, keep],
                           za[:, keep], rz[keep])
    pa = za.astype(dtype, copy=True)

    for k in range(1, crit.max_iters + 1):
        if idx.size == 0:
            break
        wa = a.matmat(pa)
        pw = _col_dots(pa, wa)
        # Curvature checks freeze a column *before* the update (its
        # iterate stays at k-1 completed iterations, no norm appended).
        bad = ~np.isfinite(pw)
        indef = np.isfinite(pw) & (pw <= 0.0)
        if bad.any() or indef.any():
            keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN,
                          k - 1)
            keep &= retire(indef, xa, TerminationReason.INDEFINITE, k - 1)
            idx, xa, ra, pa, wa, rz, pw = (
                idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                wa[:, keep], rz[keep], pw[keep])
            if idx.size == 0:
                break
        alpha = rz / pw
        xa += alpha * pa
        ra -= alpha * wa
        rnorm = _col_norms(ra)
        last_norms[idx] = rnorm
        for t, j in enumerate(idx):
            histories[j].append(float(rnorm[t]))
        if callback is not None:
            try:
                callback(k, last_norms.copy())
            except AbortSolve as exc:
                extra["abort"] = exc
                retire(np.ones(idx.size, dtype=bool),
                       xa, TerminationReason.GUARD_TRIPPED, k)
                idx = idx[:0]
                break
        nan = ~np.isfinite(rnorm)
        met = np.array([crit.is_met(float(rnorm[t]),
                                    float(b_norms[idx[t]]))
                        for t in range(idx.size)])
        met &= ~nan
        if nan.any() or met.any():
            keep = retire(nan, xa, TerminationReason.NUMERICAL_BREAKDOWN, k)
            keep &= retire(met, xa, TerminationReason.CONVERGED, k,
                           converged=True)
            idx, xa, ra, pa, rz = (idx[keep], xa[:, keep], ra[:, keep],
                                   pa[:, keep], rz[keep])
            if idx.size == 0:
                break
        za = m.apply(ra)
        rz_new = _col_dots(ra, za)
        bad = (rz_new == 0.0) | ~np.isfinite(rz_new)
        if bad.any():
            keep = retire(bad, xa, TerminationReason.NUMERICAL_BREAKDOWN, k)
            idx, xa, ra, pa, za, rz, rz_new = (
                idx[keep], xa[:, keep], ra[:, keep], pa[:, keep],
                za[:, keep], rz[keep], rz_new[keep])
            if idx.size == 0:
                break
        beta = rz_new / rz
        rz = rz_new
        pa = za + beta * pa

    # Columns still live after the loop exhausted the budget.
    retire(np.ones(idx.size, dtype=bool), xa,
           TerminationReason.MAX_ITERATIONS, crit.max_iters)
    return assemble()
