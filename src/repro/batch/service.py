"""Fingerprint-grouped solver service for multi-request throughput.

Production solver workloads rarely arrive one right-hand side at a
time: time-stepping, multiple load cases, and uncertainty sweeps all
produce *many* ``(A, b)`` requests that share a handful of distinct
matrices.  :class:`SolverService` exploits that shape twice:

1. **One factorization per distinct matrix.**  Requests are grouped by
   :func:`~repro.perf.fingerprint.matrix_fingerprint`; each group builds
   its preconditioner through
   :func:`~repro.core.spcg.make_preconditioner`, so repeated matrices —
   within a flush or across flushes — hit the
   :class:`~repro.perf.cache.ArtifactCache` instead of refactorizing.
2. **One wavefront sweep per group, not per request.**  Each group is
   dispatched as a single :func:`~repro.batch.block.pcg_block` call, so
   the per-wavefront launches and barriers of the triangular solves are
   amortized over the whole batch (priced by
   :func:`~repro.machine.kernels.iteration_cost_batched`).

Every flush emits ``batch_start``/``batch_end`` trace events carrying
the batch size and records the modeled batched kernels on a
:class:`~repro.machine.timeline.Timeline`.

Since the serving layer landed, :meth:`SolverService.flush` is a thin
wrapper over :class:`repro.serve.ServeScheduler` with the *degenerate*
batching window (zero wait, unbounded batch): every fingerprint group
dispatches immediately and whole, which reproduces the original flush
semantics exactly — same grouping, same column order, bitwise-equal
numerics — while the online path (deadlines, admission control,
continuous batching) shares one dispatch implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.device import A100, DeviceModel, get_device
from ..machine.kernels import iteration_cost_batched
from ..machine.timeline import Timeline
from ..obs.metrics import get_metrics
from ..perf.cache import ArtifactCache
from ..perf.fingerprint import matrix_fingerprint
from ..serve.request import validate_rhs, validate_x0
from ..solvers.result import SolveResult
from ..solvers.stopping import StoppingCriterion
from ..sparse.csr import CSRMatrix
from .block import BlockSolveResult

__all__ = ["SolveRequest", "GroupReport", "BatchReport", "SolverService"]


@dataclass(frozen=True)
class SolveRequest:
    """One pending ``A x = b`` request.

    ``tag`` is an opaque caller label (request id, load-case name) that
    rides along into the per-request result mapping.  ``x0`` is an
    optional warm-start guess carried into the block dispatch
    (sessions pass the previous step's solution here).
    """

    a: CSRMatrix
    b: np.ndarray
    tag: str = ""
    x0: np.ndarray | None = None


@dataclass
class GroupReport:
    """What one fingerprint group's batched dispatch did and cost.

    ``modeled_seconds_per_rhs`` is the throughput headline: total
    modeled block time divided by the batch size.  Because launches and
    wavefront barriers are paid once per sweep, it shrinks as the batch
    grows — the CI smoke step plots exactly this number for B=1 vs B=8.
    """

    fingerprint: str
    batch: int
    block_iters: int
    n_converged: int
    modeled_seconds: float
    modeled_seconds_per_rhs: float
    block: BlockSolveResult


@dataclass
class BatchReport:
    """Outcome of one :meth:`SolverService.flush`.

    ``results`` is index-aligned with submission order (the ``i``-th
    submitted request gets ``results[i]``) regardless of how requests
    were grouped internally.
    """

    results: list[SolveResult]
    tags: list[str]
    groups: list[GroupReport]
    timeline: Timeline = field(default_factory=Timeline)

    @property
    def n_requests(self) -> int:
        return len(self.results)

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.results)

    @property
    def modeled_seconds(self) -> float:
        """Total modeled time across all grouped dispatches."""
        return sum(g.modeled_seconds for g in self.groups)


class SolverService:
    """Accepts ``(matrix, b)`` requests and dispatches them batched.

    Parameters
    ----------
    preconditioner, k:
        Forwarded to :func:`~repro.core.spcg.make_preconditioner`
        (``"ilu0"``, ``"iluk"``, ``"ic0"`` or ``"jacobi"``).
    criterion:
        Stopping rule shared by every request (paper default if
        ``None``).
    device:
        :class:`~repro.machine.device.DeviceModel` (or its name) used to
        price the batched kernels; the A100 model by default.
    cache:
        :class:`~repro.perf.cache.ArtifactCache` for preconditioner
        reuse — ``None`` uses the process-wide cache.  One factorization
        per distinct fingerprint is the service's cost invariant; the
        cache's ``misses_by_kind["preconditioner"]`` counter proves it.

    Examples
    --------
    >>> svc = SolverService(preconditioner="jacobi")
    >>> for b in rhs_list:
    ...     svc.submit(a, b)
    >>> report = svc.flush()
    >>> [r.converged for r in report.results]
    """

    def __init__(self, *, preconditioner: str = "ilu0", k: int = 1,
                 criterion: StoppingCriterion | None = None,
                 device: DeviceModel | str | None = None,
                 cache: ArtifactCache | None = None):
        self.kind = preconditioner
        self.k = int(k)
        self.criterion = criterion
        if device is None:
            device = A100
        elif isinstance(device, str):
            device = get_device(device)
        self.device = device
        self.cache = cache
        self._pending: list[SolveRequest] = []
        self._fingerprints: list[str] = []

    def __len__(self) -> int:
        """Number of pending (not yet flushed) requests."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def submit(self, a: CSRMatrix, b: np.ndarray, *, tag: str = "",
               x0: np.ndarray | None = None) -> int:
        """Queue one request; returns its submission index.

        Validation happens here (not at flush) so a malformed request
        fails at the call site that produced it:
        :class:`~repro.errors.ShapeError` for a bad shape,
        :class:`~repro.errors.InvalidRequestError` (naming *tag*) for a
        non-numeric dtype or NaN/Inf entries — the same contract for
        the optional warm start ``x0`` (shape ``(n,)``; scattered into
        the group's block dispatch, zero columns for cold requests).
        """
        b = validate_rhs(a, b, tag=tag)
        x0 = validate_x0(a, x0, tag=tag)
        self._pending.append(SolveRequest(a=a, b=b, tag=tag, x0=x0))
        self._fingerprints.append(matrix_fingerprint(a))
        return len(self._pending) - 1

    def solve(self, requests) -> BatchReport:
        """Convenience: submit every request and flush.

        Accepts :class:`SolveRequest` instances as well as plain
        ``(a, b)`` or ``(a, b, tag)`` tuples.
        """
        for req in requests:
            if isinstance(req, SolveRequest):
                self.submit(req.a, req.b, tag=req.tag, x0=req.x0)
            else:
                self.submit(*req[:2], tag=req[2] if len(req) > 2 else "")
        return self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> BatchReport:
        """Dispatch the pending queue through the serving scheduler's
        degenerate batching window (zero wait, unbounded batch) and
        return per-request results in submission order.

        The scheduler groups by fingerprint and dispatches each group
        as one :func:`~repro.batch.block.pcg_block` — identical
        grouping, column order and numerics as the original one-shot
        flush.  The legacy :class:`GroupReport`/:class:`BatchReport`
        pricing (the *static* full-batch iteration cost times the
        block's sweep count) is recomputed here so downstream
        consumers keep their invariants; the scheduler's own trace
        events additionally carry the occupancy-aware pricing.
        """
        # Imported here, not at module top: repro.serve builds on
        # repro.batch (the scheduler drives pcg_block), so the service
        # reaches back up lazily to keep the layering acyclic.
        from ..serve.scheduler import BatchingWindow, ServeScheduler

        pending = self._pending
        self._pending, self._fingerprints = [], []

        sched = ServeScheduler(
            preconditioner=self.kind, k=self.k, criterion=self.criterion,
            device=self.device, cache=self.cache,
            window=BatchingWindow.degenerate())
        ids = [sched.submit(req.a, req.b, tag=req.tag, x0=req.x0)
               for req in pending]
        sched.run()

        results: list[SolveResult] = []
        for i in ids:
            out = sched.outcome(i)
            assert out is not None and out.result is not None
            results.append(out.result)

        fp_matrix: dict[str, CSRMatrix] = {}
        for req, i in zip(pending, ids):
            fp_matrix.setdefault(sched.outcome(i).fingerprint, req.a)

        reports: list[GroupReport] = []
        timeline = Timeline()
        metrics = get_metrics()
        for d in sched.report().dispatches:
            a = fp_matrix[d.fingerprint]
            nb = d.n_served
            cost = iteration_cost_batched(self.device, a,
                                          d.preconditioner, batch=nb)
            block: BlockSolveResult = d.block
            sweeps = block.block_iters
            for name, t in (("spmv_batched", cost.spmv),
                            ("trisolve_fwd_batched", cost.precond_fwd),
                            ("trisolve_bwd_batched", cost.precond_bwd),
                            ("dots_batched", cost.dots),
                            ("axpys_batched", cost.axpys)):
                timeline.record(name, "batched_solve", t * sweeps)
            seconds = cost.total * sweeps
            reports.append(GroupReport(
                fingerprint=d.fingerprint, batch=nb, block_iters=sweeps,
                n_converged=int(block.converged.sum()),
                modeled_seconds=seconds,
                modeled_seconds_per_rhs=seconds / nb, block=block))
            metrics.observe_phase("batched_solve", d.wall_seconds,
                                  seconds)

        return BatchReport(results=results,
                           tags=[req.tag for req in pending],
                           groups=reports, timeline=timeline)
