"""Sparse-matrix substrate built from scratch for the SPCG reproduction.

The paper's entire pipeline operates on compressed sparse row (CSR)
matrices (Figure 1b); this subpackage provides the containers and the
vectorized kernels everything else is built on:

* :class:`COOMatrix`, :class:`CSRMatrix`, :class:`CSCMatrix` containers,
* construction helpers (:func:`eye`, :func:`diags`, stencils, random SPD),
* elementwise ops, triangle extraction, permutation,
* SpMV,
* matrix norms (1/inf/Frobenius and a power-iteration 2-norm estimate),
* Matrix Market I/O so real SuiteSparse matrices drop in,
* reverse Cuthill–McKee reordering.

SciPy is deliberately *not* a dependency of this package; it is only used
in the test-suite as an independent oracle.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .csc import CSCMatrix
from .construct import (
    csr_from_dense,
    diags,
    eye,
    kron,
    random_spd,
    stencil_poisson_1d,
    stencil_poisson_2d,
    stencil_poisson_3d,
)
from .ops import (
    add,
    diagonal,
    extract_lower,
    extract_strict_lower,
    extract_strict_upper,
    extract_upper,
    is_structurally_symmetric,
    is_symmetric,
    permute,
    scale,
    subtract,
    symmetrize,
)
from .norms import norm_1, norm_2_est, norm_fro, norm_inf, norm_max
from .matrix_market import read_matrix_market, write_matrix_market
from .spgemm import spgemm
from .validation import (SPDReport, check_spd, dominance_measure,
                         gershgorin_bounds)
from .reorder import rcm_ordering

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "csr_from_dense",
    "diags",
    "eye",
    "kron",
    "random_spd",
    "stencil_poisson_1d",
    "stencil_poisson_2d",
    "stencil_poisson_3d",
    "add",
    "subtract",
    "scale",
    "diagonal",
    "extract_lower",
    "extract_upper",
    "extract_strict_lower",
    "extract_strict_upper",
    "is_symmetric",
    "is_structurally_symmetric",
    "symmetrize",
    "permute",
    "norm_1",
    "norm_2_est",
    "norm_fro",
    "norm_inf",
    "norm_max",
    "read_matrix_market",
    "write_matrix_market",
    "rcm_ordering",
    "spgemm",
    "SPDReport",
    "check_spd",
    "dominance_measure",
    "gershgorin_bounds",
]
