"""Compressed sparse column matrix.

CSC is used where column access dominates: the frontier-based level
scheduler walks the *children* of each solved row, which are exactly the
rows stored in a column of the lower factor.  A ``CSCMatrix`` of ``L`` is
the CSR of ``L^T`` with the logical shape kept un-transposed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, SparseFormatError

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """Sparse matrix in compressed sparse column format.

    Parameters
    ----------
    indptr:
        Column pointer array of length ``n_cols + 1``.
    indices:
        Row indices, length ``nnz``, sorted and unique within each column.
    data:
        Values, length ``nnz``.
    shape:
        ``(n_rows, n_cols)`` — the *logical* shape.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape: tuple[int, int], *,
                 check: bool = True):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data)
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self.check_format()

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def col_slice(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of column *j*'s ``(rows, values)``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def check_format(self) -> None:
        """Validate CSC invariants via the transposed-CSR validator."""
        from .csr import CSRMatrix

        n, m = self.shape
        if self.indptr.ndim != 1 or self.indptr.shape[0] != m + 1:
            raise SparseFormatError(
                f"indptr must have length n_cols+1={m + 1}, "
                f"got {self.indptr.shape}")
        # Reuse the CSR checks on the transposed view.
        CSRMatrix(self.indptr, self.indices, self.data, (m, n), check=True)

    def tocsr(self):
        """Convert to canonical CSR."""
        from .csr import CSRMatrix

        as_t = CSRMatrix(self.indptr, self.indices, self.data,
                         (self.n_cols, self.n_rows), check=False)
        return as_t.transpose()

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array."""
        return self.tocsr().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"dtype={self.data.dtype})")
