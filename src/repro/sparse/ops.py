"""Elementwise and structural operations on CSR matrices.

These implement the algebra the sparsifier needs: the decomposition
``A = Â + S`` (Section 3.2), triangle extraction for the ILU factors, and
symmetry checks that guard the SPD assumptions.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotSymmetricError, ShapeError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "add",
    "subtract",
    "scale",
    "diagonal",
    "extract_lower",
    "extract_upper",
    "extract_strict_lower",
    "extract_strict_upper",
    "is_structurally_symmetric",
    "is_symmetric",
    "symmetrize",
    "permute",
]


def _binary_shapes(a: CSRMatrix, b: CSRMatrix) -> None:
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")


def add(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Entrywise sum ``A + B`` (explicit zeros are kept; use
    :meth:`CSRMatrix.eliminate_zeros` to drop them)."""
    _binary_shapes(a, b)
    rows_a = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths())
    rows_b = np.repeat(np.arange(b.n_rows, dtype=np.int64), b.row_lengths())
    dtype = np.result_type(a.dtype, b.dtype)
    coo = COOMatrix(
        np.concatenate([rows_a, rows_b]),
        np.concatenate([a.indices, b.indices]),
        np.concatenate([a.data.astype(dtype, copy=False),
                        b.data.astype(dtype, copy=False)]),
        a.shape, check=False)
    return coo.tocsr()


def subtract(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Entrywise difference ``A - B``."""
    return add(a, scale(b, -1.0))


def scale(a: CSRMatrix, alpha: float) -> CSRMatrix:
    """Scalar multiple ``alpha * A`` (new value array, shared indices)."""
    return CSRMatrix(a.indptr, a.indices, a.data * a.dtype.type(alpha),
                     a.shape, check=False)


def diagonal(a: CSRMatrix) -> np.ndarray:
    """Main diagonal of *A* as a dense vector."""
    return a.diagonal()


def _extract(a: CSRMatrix, keep_mask: np.ndarray) -> CSRMatrix:
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths())
    rows = rows[keep_mask]
    indptr = np.zeros(a.n_rows + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(indptr, a.indices[keep_mask], a.data[keep_mask],
                     a.shape, check=False)


def _row_ids(a: CSRMatrix) -> np.ndarray:
    return np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths())


def extract_lower(a: CSRMatrix) -> CSRMatrix:
    """Lower triangle including the diagonal."""
    return _extract(a, a.indices <= _row_ids(a))


def extract_upper(a: CSRMatrix) -> CSRMatrix:
    """Upper triangle including the diagonal."""
    return _extract(a, a.indices >= _row_ids(a))


def extract_strict_lower(a: CSRMatrix) -> CSRMatrix:
    """Strictly lower triangle (diagonal excluded)."""
    return _extract(a, a.indices < _row_ids(a))


def extract_strict_upper(a: CSRMatrix) -> CSRMatrix:
    """Strictly upper triangle (diagonal excluded)."""
    return _extract(a, a.indices > _row_ids(a))


def is_structurally_symmetric(a: CSRMatrix) -> bool:
    """``True`` when the sparsity pattern of *A* equals that of its
    transpose (values ignored)."""
    if a.shape[0] != a.shape[1]:
        return False
    t = a.transpose()
    return (np.array_equal(a.indptr, t.indptr)
            and np.array_equal(a.indices, t.indices))


def is_symmetric(a: CSRMatrix, tol: float = 0.0) -> bool:
    """``True`` when ``|A - A^T|`` is entrywise at most *tol*."""
    if a.shape[0] != a.shape[1]:
        return False
    t = a.transpose()
    if not (np.array_equal(a.indptr, t.indptr)
            and np.array_equal(a.indices, t.indices)):
        # Fall back to an exact difference for pattern-asymmetric storage
        # (a symmetric matrix may still carry explicit zeros).
        d = subtract(a, t)
        return bool(d.nnz == 0 or np.all(np.abs(d.data) <= tol))
    return bool(np.all(np.abs(a.data - t.data) <= tol))


def symmetrize(a: CSRMatrix) -> CSRMatrix:
    """Return ``(A + A^T) / 2``."""
    if a.shape[0] != a.shape[1]:
        raise NotSymmetricError("symmetrize requires a square matrix")
    return scale(add(a, a.transpose()), 0.5)


def permute(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Symmetric permutation ``A[perm, :][:, perm]``.

    ``perm[k]`` gives the original index placed at position *k* of the
    reordered matrix (the convention used by RCM).
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("symmetric permutation requires a square matrix")
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ShapeError("perm must be a permutation of range(n)")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n, dtype=np.int64)
    rows = _row_ids(a)
    coo = COOMatrix(inv[rows], inv[a.indices], a.data.copy(), a.shape,
                    check=False)
    return coo.tocsr()
