"""Numerical validation utilities for SPD inputs.

SPCG assumes a symmetric positive definite system; these helpers give
cheap certificates and diagnostics: Gershgorin eigenvalue bounds, a
diagonal-dominance measure, and a combined SPD pre-flight check used by
the dataset tests and available to users feeding their own matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .csr import CSRMatrix
from .ops import is_symmetric

__all__ = ["gershgorin_bounds", "dominance_measure", "SPDReport",
           "check_spd"]


def gershgorin_bounds(a: CSRMatrix) -> tuple[float, float]:
    """Gershgorin interval ``[min_i (a_ii − r_i), max_i (a_ii + r_i)]``
    containing every eigenvalue, with ``r_i`` the off-diagonal absolute
    row sum.  A positive lower bound certifies positive definiteness for
    symmetric input."""
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("Gershgorin bounds require a square matrix")
    rid = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    off = rid != a.indices
    radii = np.zeros(n, dtype=np.float64)
    np.add.at(radii, rid[off], np.abs(a.data[off]).astype(np.float64))
    diag = a.diagonal().astype(np.float64)
    return float((diag - radii).min()), float((diag + radii).max())


def dominance_measure(a: CSRMatrix) -> float:
    """Worst-row diagonal dominance ``min_i a_ii / r_i`` (``inf`` for a
    diagonal matrix); values > 1 mean strict diagonal dominance."""
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("dominance measure requires a square matrix")
    rid = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    off = rid != a.indices
    radii = np.zeros(n, dtype=np.float64)
    np.add.at(radii, rid[off], np.abs(a.data[off]).astype(np.float64))
    diag = a.diagonal().astype(np.float64)
    with np.errstate(divide="ignore"):
        ratios = np.where(radii > 0, diag / np.maximum(radii, 1e-300),
                          np.inf)
    return float(ratios.min()) if n else float("inf")


@dataclass(frozen=True)
class SPDReport:
    """Result of the SPD pre-flight check.

    ``certified`` means *provably* SPD (symmetric + positive Gershgorin
    lower bound); a matrix can be SPD without certification — the
    Gershgorin certificate is sufficient, not necessary.
    """

    symmetric: bool
    positive_diagonal: bool
    gershgorin_min: float
    gershgorin_max: float
    dominance: float

    @property
    def certified(self) -> bool:
        return self.symmetric and self.gershgorin_min > 0.0

    @property
    def plausible(self) -> bool:
        """Symmetric with positive diagonal — necessary SPD conditions."""
        return self.symmetric and self.positive_diagonal


def check_spd(a: CSRMatrix, *, tol: float = 1e-12) -> SPDReport:
    """Cheap SPD pre-flight: symmetry, diagonal sign, Gershgorin bounds,
    dominance (all O(nnz))."""
    lo, hi = gershgorin_bounds(a)
    diag = a.diagonal()
    return SPDReport(
        symmetric=is_symmetric(a, tol=tol),
        positive_diagonal=bool(np.all(diag > 0)),
        gershgorin_min=lo,
        gershgorin_max=hi,
        dominance=dominance_measure(a),
    )
