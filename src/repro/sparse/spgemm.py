"""Sparse general matrix–matrix multiplication (SpGEMM).

A row-wise Gustavson SpGEMM with a vectorized inner gather: for each row
of ``A``, the contributing rows of ``B`` are concatenated and reduced
with ``np.add.at``.  Used by the normal-equation dataset generators, the
factor-quality diagnostics (``‖LU − A‖`` on patterns), and available as
public API.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .csr import CSRMatrix

__all__ = ["spgemm"]


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sparse product ``C = A @ B`` in canonical CSR form.

    Gustavson's algorithm with one dense accumulator column-marker array
    reused across rows; per row, contributions are gathered with NumPy
    slicing so the Python-level work is O(rows), not O(flops).

    Complexity: O(Σᵢ Σ_{k∈Aᵢ} nnz(B_k)) time, O(n_cols) extra space.
    """
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    n, m = a.shape[0], b.shape[1]
    acc = np.zeros(m, dtype=np.float64)
    marked = np.zeros(m, dtype=bool)

    out_indptr = np.zeros(n + 1, dtype=np.int64)
    out_cols: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []

    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    for i in range(n):
        cols_a, vals_a = a.row_slice(i)
        if cols_a.shape[0] == 0:
            out_indptr[i + 1] = out_indptr[i]
            continue
        # Concatenate the contributing B-rows and their scaling factors.
        starts = b_indptr[cols_a]
        ends = b_indptr[cols_a + 1]
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            out_indptr[i + 1] = out_indptr[i]
            continue
        take = (np.repeat(starts - np.concatenate(
            ([0], np.cumsum(lens)[:-1])), lens)
            + np.arange(total, dtype=np.int64))
        cols_b = b_indices[take]
        contrib = b_data[take] * np.repeat(vals_a, lens)
        np.add.at(acc, cols_b, contrib.astype(np.float64))
        marked[cols_b] = True
        nz = np.flatnonzero(marked)
        out_cols.append(nz.copy())
        out_vals.append(acc[nz].copy())
        acc[nz] = 0.0
        marked[nz] = False
        out_indptr[i + 1] = out_indptr[i] + nz.shape[0]

    dtype = np.result_type(a.dtype, b.dtype)
    cols = (np.concatenate(out_cols) if out_cols
            else np.empty(0, dtype=np.int64))
    vals = (np.concatenate(out_vals).astype(dtype) if out_vals
            else np.empty(0, dtype=dtype))
    return CSRMatrix(out_indptr, cols, vals, (n, m), check=False)
