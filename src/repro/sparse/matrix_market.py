"""Matrix Market (``.mtx``) reader/writer.

The paper's dataset is 107 SPD matrices from the SuiteSparse collection,
which ships in Matrix Market exchange format.  This module implements the
coordinate real/integer/pattern subset (general and symmetric) so that the
pipeline runs unmodified on the original files when they are available;
the synthetic registry in :mod:`repro.datasets` is the offline stand-in.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from ..errors import MatrixMarketError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_BANNER = "%%MatrixMarket"


def _open_text(path: str | Path):
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return open(path, "r", encoding="ascii")


def read_matrix_market(path: str | Path, *, dtype=np.float64) -> CSRMatrix:
    """Read a Matrix Market coordinate file into a CSR matrix.

    Supports ``real``, ``integer`` and ``pattern`` fields with ``general``,
    ``symmetric`` or ``skew-symmetric`` symmetry.  Symmetric storage is
    expanded to full form (diagonal entries are not duplicated).  Pattern
    entries get the value 1.0.  ``.gz`` files are decompressed on the fly.
    """
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith(_BANNER):
            raise MatrixMarketError(f"missing MatrixMarket banner in {path}")
        parts = header.strip().split()
        if len(parts) < 5:
            raise MatrixMarketError(f"malformed banner: {header!r}")
        _, obj, fmt, field, symmetry = (p.lower() for p in parts[:5])
        if obj != "matrix" or fmt != "coordinate":
            raise MatrixMarketError(
                f"only 'matrix coordinate' files are supported, got "
                f"{obj!r} {fmt!r}")
        if field not in ("real", "integer", "pattern"):
            raise MatrixMarketError(f"unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
        # Skip comment lines and (spec-valid) blank lines before the
        # size line — a readline() at EOF returns "" and exits the loop.
        line = fh.readline()
        while line and (line.startswith("%") or not line.strip()):
            line = fh.readline()
        dims = line.split()
        if len(dims) != 3:
            raise MatrixMarketError(f"malformed size line: {line!r}")
        n, m, nnz = (int(x) for x in dims)
        body = fh.read()

    cols_per_entry = 2 if field == "pattern" else 3
    try:
        flat = np.array(body.split(), dtype=np.float64)
    except ValueError as exc:
        raise MatrixMarketError(f"non-numeric entry in {path}") from exc
    if flat.size != nnz * cols_per_entry:
        raise MatrixMarketError(
            f"expected {nnz} entries of {cols_per_entry} fields, got "
            f"{flat.size} numbers")
    table = flat.reshape(nnz, cols_per_entry)
    rows = table[:, 0].astype(np.int64) - 1
    cols = table[:, 1].astype(np.int64) - 1
    if field == "pattern":
        vals = np.ones(nnz, dtype=dtype)
    else:
        vals = table[:, 2].astype(dtype)
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols2 = np.concatenate([cols, table[:, 0].astype(np.int64)[off] - 1])
        vals = np.concatenate([vals, (sign * table[off, 2]).astype(dtype)
                               if field != "pattern"
                               else np.full(off.sum(), sign, dtype=dtype)])
        cols = cols2
    return COOMatrix(rows, cols, vals, (n, m)).tocsr()


def write_matrix_market(path: str | Path, a: CSRMatrix, *,
                        symmetric: bool = False,
                        comment: str | None = None) -> None:
    """Write *a* in Matrix Market coordinate real format.

    When ``symmetric=True`` only the lower triangle is emitted with the
    ``symmetric`` qualifier (the caller is responsible for *a* actually
    being symmetric).
    """
    path = Path(path)
    coo = a.tocoo()
    rows, cols, vals = coo.row, coo.col, coo.data
    if symmetric:
        keep = rows >= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    sym = "symmetric" if symmetric else "general"
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        if comment:
            for ln in comment.splitlines():
                fh.write(f"% {ln}\n")
        fh.write(f"{a.shape[0]} {a.shape[1]} {rows.size}\n")
        # One batched savetxt call instead of one fh.write per nonzero —
        # the body dominates writer time for ~1e5-nnz matrices.
        if rows.size:
            table = np.column_stack((rows + 1, cols + 1,
                                     vals.astype(np.float64)))
            np.savetxt(fh, table, fmt="%d %d %.17g")
