"""Compressed sparse row matrix — the workhorse container.

Everything in the SPCG pipeline (sparsification, ILU factorization,
wavefront scheduling, triangular solves, SpMV) operates on this class.
The canonical form required by the numeric kernels is: sorted column
indices within each row and no duplicate entries; :meth:`check_format`
verifies it and conversions from COO establish it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, SparseFormatError
from ..util import segment_sum

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Sparse matrix in compressed sparse row format (Figure 1b of the paper).

    Parameters
    ----------
    indptr:
        Row pointer array of length ``n_rows + 1``.
    indices:
        Column indices, length ``nnz``.
    data:
        Values, length ``nnz``.
    shape:
        ``(n_rows, n_cols)``.
    check:
        When ``True`` (default) validate the format invariants.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr, indices, data, shape: tuple[int, int], *,
                 check: bool = True):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data)
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self.check_format()

    # -- basic properties ------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to a dense matrix."""
        n, m = self.shape
        return self.nnz / (n * m) if n and m else 0.0

    def row_lengths(self) -> np.ndarray:
        """Stored entries per row, length ``n_rows``."""
        return np.diff(self.indptr)

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of row *i*'s ``(columns, values)``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # -- validation ------------------------------------------------------
    def check_format(self) -> None:
        """Validate CSR invariants, raising :class:`SparseFormatError`.

        Checks: indptr length/monotonicity, index bounds, array lengths,
        sorted-and-unique columns within each row (the canonical form the
        numeric kernels assume).
        """
        n, m = self.shape
        if self.indptr.ndim != 1 or self.indptr.shape[0] != n + 1:
            raise SparseFormatError(
                f"indptr must have length n_rows+1={n + 1}, "
                f"got {self.indptr.shape}")
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise SparseFormatError(
                "indices/data length must equal indptr[-1]")
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= m:
                raise SparseFormatError("column index out of bounds")
            # Sorted & unique within rows: differences inside a row must be
            # strictly positive.  Row boundaries are exempt.
            d = np.diff(self.indices)
            row_start = np.zeros(nnz, dtype=bool)
            # Interior row starts; boundaries equal to nnz come from
            # trailing empty rows and mark no entry.
            starts = self.indptr[1:-1]
            row_start[starts[starts < nnz]] = True
            interior = ~row_start[1:]
            if np.any(d[interior] <= 0):
                raise SparseFormatError(
                    "column indices must be sorted and unique within rows")

    # -- constructors / conversions --------------------------------------
    @classmethod
    def from_dense(cls, dense, *, dtype=None) -> "CSRMatrix":
        """Build from a dense 2-D array, storing its nonzero entries."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        if dtype is not None:
            dense = dense.astype(dtype, copy=False)
        rows, cols = np.nonzero(dense)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols.astype(np.int64), dense[rows, cols].copy(),
                   dense.shape, check=False)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array.

        Duplicate coordinates (possible with ``check=False``) are
        summed, matching :meth:`matvec` and the COO convention.
        """
        out = np.zeros(self.shape, dtype=self.data.dtype)
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        np.add.at(out, (rows, self.indices), self.data)
        return out

    def tocoo(self):
        """Convert to :class:`~repro.sparse.coo.COOMatrix` (copies indices)."""
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64),
                         self.row_lengths())
        return COOMatrix(rows, self.indices.copy(), self.data.copy(),
                         self.shape, check=False)

    def tocsc(self):
        """Convert to :class:`~repro.sparse.csc.CSCMatrix`."""
        from .csc import CSCMatrix

        t = self.transpose()
        return CSCMatrix(t.indptr, t.indices, t.data, self.shape, check=False)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new canonical CSR matrix."""
        n, m = self.shape
        rows = np.repeat(np.arange(n, dtype=np.int64), self.row_lengths())
        # Stable counting sort by column gives the transpose's row order;
        # within a column the original row order is already ascending, so
        # the result is canonical.
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, self.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        order = np.argsort(self.indices, kind="stable")
        return CSRMatrix(indptr, rows[order], self.data[order], (m, n),
                         check=False)

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), self.shape, check=False)

    def astype(self, dtype) -> "CSRMatrix":
        """Return a copy with values cast to *dtype* (indices shared)."""
        return CSRMatrix(self.indptr, self.indices,
                         self.data.astype(dtype), self.shape, check=False)

    # -- numeric kernels ---------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sparse matrix–vector product ``y = A @ x``.

        Vectorized as a gather + segmented sum; this is the SpMV kernel on
        line 9 of Algorithm 1.
        """
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"x must have shape ({self.n_cols},), got {x.shape}")
        prod = self.data * x[self.indices]
        y = segment_sum(prod, self.indptr[:-1], self.indptr[1:])
        y = y.astype(np.result_type(self.data.dtype, x.dtype), copy=False)
        if out is None:
            return y
        out[...] = y
        return out

    def matmat(self, x: np.ndarray, out: np.ndarray | None = None
               ) -> np.ndarray:
        """Sparse matrix–dense block product ``Y = A @ X``, ``X`` (n, B).

        The batched SpMV of the multi-RHS solver: one gather + segmented
        sum serves all ``B`` columns.  Each column of the result is
        bitwise identical to :meth:`matvec` on that column alone (the
        segmented float64 cumsum performs the same additions in the same
        order), so block solves decompose exactly into single-RHS ones.
        """
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.n_cols:
            raise ShapeError(
                f"x must have shape ({self.n_cols}, B), got {x.shape}")
        prod = self.data[:, None] * x[self.indices, :]
        y = segment_sum(prod, self.indptr[:-1], self.indptr[1:])
        y = y.astype(np.result_type(self.data.dtype, x.dtype), copy=False)
        if out is None:
            return y
        out[...] = y
        return out

    def __matmul__(self, x):
        if isinstance(x, np.ndarray) and x.ndim == 1:
            return self.matvec(x)
        if isinstance(x, np.ndarray) and x.ndim == 2:
            return self.matmat(x)
        return NotImplemented

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (zeros where unstored).

        Duplicate stored coordinates (representable when built with
        ``check=False``) are **summed** — the same assembly semantics
        :meth:`matvec` and the COO conversion apply — so every consumer
        of the diagonal sees the matrix the numeric kernels act on.
        """
        n = min(self.shape)
        out = np.zeros(n, dtype=self.data.dtype)
        for_rows = np.arange(self.n_rows, dtype=np.int64)
        rows = np.repeat(for_rows, self.row_lengths())
        mask = (rows == self.indices) & (rows < n)
        np.add.at(out, rows[mask], self.data[mask])
        return out

    def eliminate_zeros(self, tol: float = 0.0) -> "CSRMatrix":
        """Return a copy with entries of magnitude ``<= tol`` removed."""
        keep = np.abs(self.data) > tol
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64),
                         self.row_lengths())[keep]
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(indptr, self.indices[keep], self.data[keep],
                         self.shape, check=False)

    def get(self, i: int, j: int) -> float:
        """Value at ``(i, j)`` (0.0 when unstored). O(log row length)."""
        cols, vals = self.row_slice(i)
        k = np.searchsorted(cols, j)
        if k < cols.shape[0] and cols[k] == j:
            return float(vals[k])
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"dtype={self.data.dtype})")
