"""Matrix norms for sparse matrices.

The sparsification convergence indicator (Section 3.2.2) needs the
inf-norm of ``Â`` (as the largest-eigenvalue proxy), the norm of the
residual matrix ``S``, and an estimate of ``‖Â‖₂`` for the identity
``‖Â⁻¹‖ ≈ κ(Â)/‖Â‖₂``.  The 2-norm is estimated by power iteration on
``AᵀA`` — cheap, matrix-free and good enough for the heuristic (the paper
makes the same accuracy/cost trade-off).
"""

from __future__ import annotations

import numpy as np

from ..util import segment_sum
from .csr import CSRMatrix

__all__ = ["norm_inf", "norm_1", "norm_fro", "norm_max", "norm_2_est"]


def norm_inf(a: CSRMatrix) -> float:
    """Infinity norm: maximum absolute row sum."""
    if a.nnz == 0:
        return 0.0
    sums = segment_sum(np.abs(a.data), a.indptr[:-1], a.indptr[1:])
    return float(sums.max(initial=0.0))


def norm_1(a: CSRMatrix) -> float:
    """1-norm: maximum absolute column sum."""
    if a.nnz == 0:
        return 0.0
    col_sums = np.zeros(a.n_cols, dtype=np.float64)
    np.add.at(col_sums, a.indices, np.abs(a.data).astype(np.float64))
    return float(col_sums.max(initial=0.0))


def norm_fro(a: CSRMatrix) -> float:
    """Frobenius norm."""
    return float(np.sqrt(np.sum(np.abs(a.data.astype(np.float64)) ** 2)))


def norm_max(a: CSRMatrix) -> float:
    """Largest absolute entry (not a sub-multiplicative norm)."""
    if a.nnz == 0:
        return 0.0
    return float(np.abs(a.data).max())


def norm_2_est(a: CSRMatrix, *, iters: int = 25, seed: int = 0,
               rtol: float = 1e-6) -> float:
    """Spectral-norm estimate by power iteration on ``AᵀA``.

    Returns an estimate of ``σ_max(A)``.  Deterministic for a fixed *seed*.
    Converges geometrically at rate ``(σ₂/σ₁)²``; 25 iterations is ample
    for the indicator's purposes.
    """
    n, m = a.shape
    if a.nnz == 0 or n == 0 or m == 0:
        return 0.0
    at = a.transpose()
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(m)
    v /= np.linalg.norm(v)
    sigma = 0.0
    for _ in range(max(1, iters)):
        w = a.matvec(v.astype(a.dtype, copy=False)).astype(np.float64)
        z = at.matvec(w.astype(a.dtype, copy=False)).astype(np.float64)
        nz = np.linalg.norm(z)
        if nz == 0.0:
            return 0.0
        new_sigma = float(np.sqrt(nz))
        v = z / nz
        if sigma > 0.0 and abs(new_sigma - sigma) <= rtol * sigma:
            sigma = new_sigma
            break
        sigma = new_sigma
    return sigma
