"""Reverse Cuthill–McKee reordering.

Bandwidth-reducing orderings interact strongly with wavefront counts: a
banded matrix has long dependence chains, which is exactly the regime where
the paper's sparsification pays off.  RCM is provided both as a dataset
preprocessing option and for the ablation studies that vary dependence-chain
length independently of the numerics.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .csr import CSRMatrix

__all__ = ["rcm_ordering", "bandwidth"]


def bandwidth(a: CSRMatrix) -> int:
    """Maximum of ``|i - j|`` over stored entries."""
    if a.nnz == 0:
        return 0
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths())
    return int(np.abs(rows - a.indices).max())


def rcm_ordering(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee permutation of a structurally symmetric matrix.

    Returns ``perm`` such that ``permute(a, perm)`` has (typically) reduced
    bandwidth.  ``perm[k]`` is the original row placed at position *k*.
    Works per connected component; pseudo-peripheral start vertices are
    chosen as minimum-degree vertices, the standard cheap heuristic.
    """
    n = a.n_rows
    if a.shape[0] != a.shape[1]:
        raise ShapeError("RCM requires a square matrix")
    # Symmetrize the pattern so the traversal sees an undirected graph.
    at = a.transpose()
    degree = np.zeros(n, dtype=np.int64)

    # Build adjacency as the union of row patterns of A and A^T.
    def neighbors(i: int) -> np.ndarray:
        c1, _ = a.row_slice(i)
        c2, _ = at.row_slice(i)
        nb = np.union1d(c1, c2)
        return nb[nb != i]

    for i in range(n):
        degree[i] = neighbors(i).shape[0]

    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    remaining = np.argsort(degree, kind="stable")  # min-degree first
    ptr = 0
    while len(order) < n:
        # Next unvisited minimum-degree vertex starts a component.
        while visited[remaining[ptr]]:
            ptr += 1
        start = int(remaining[ptr])
        visited[start] = True
        queue = [start]
        order.append(start)
        head = len(order) - 1
        while head < len(order):
            v = order[head]
            head += 1
            nb = neighbors(v)
            nb = nb[~visited[nb]]
            if nb.size:
                nb = nb[np.argsort(degree[nb], kind="stable")]
                visited[nb] = True
                order.extend(int(x) for x in nb)
        del queue
    perm = np.array(order[::-1], dtype=np.int64)
    return perm
