"""Constructors for common sparse matrices.

Provides the structured stencils (1/2/3-D Poisson) that anchor the synthetic
dataset generators, plus generic helpers (``eye``, ``diags``, ``kron``) and a
random-SPD builder used throughout the tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "csr_from_dense",
    "eye",
    "diags",
    "kron",
    "stencil_poisson_1d",
    "stencil_poisson_2d",
    "stencil_poisson_3d",
    "random_spd",
]


def csr_from_dense(dense, *, dtype=None) -> CSRMatrix:
    """Alias for :meth:`CSRMatrix.from_dense` (convenience re-export)."""
    return CSRMatrix.from_dense(dense, dtype=dtype)


def eye(n: int, *, dtype=np.float64) -> CSRMatrix:
    """Identity matrix of order *n* in CSR form."""
    if n < 0:
        raise ShapeError("n must be non-negative")
    idx = np.arange(n, dtype=np.int64)
    return CSRMatrix(np.arange(n + 1, dtype=np.int64), idx,
                     np.ones(n, dtype=dtype), (n, n), check=False)


def diags(offsets_to_values: dict[int, np.ndarray] | Sequence[tuple[int, np.ndarray]],
          n: int, *, dtype=np.float64) -> CSRMatrix:
    """Build an ``n × n`` matrix from diagonals.

    Parameters
    ----------
    offsets_to_values:
        Mapping (or pair sequence) from diagonal offset *k* to either a
        scalar (broadcast along the diagonal) or an array of length
        ``n - |k|``.
    n:
        Matrix order.
    """
    items = (offsets_to_values.items()
             if isinstance(offsets_to_values, dict) else offsets_to_values)
    rows_all, cols_all, vals_all = [], [], []
    for k, v in items:
        k = int(k)
        length = n - abs(k)
        if length <= 0:
            raise ShapeError(f"offset {k} out of range for order {n}")
        v = np.broadcast_to(np.asarray(v, dtype=dtype), (length,))
        if k >= 0:
            r = np.arange(length, dtype=np.int64)
            c = r + k
        else:
            c = np.arange(length, dtype=np.int64)
            r = c - k
        rows_all.append(r)
        cols_all.append(c)
        vals_all.append(v)
    coo = COOMatrix(np.concatenate(rows_all), np.concatenate(cols_all),
                    np.concatenate(vals_all).astype(dtype), (n, n),
                    check=False)
    return coo.tocsr()


def kron(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Kronecker product ``A ⊗ B`` (used to assemble 2-D/3-D stencils)."""
    an, am = a.shape
    bn, bm = b.shape
    a_coo = a.tocoo()
    b_coo = b.tocoo()
    # Outer products of index/value triplets.
    rows = (a_coo.row[:, None] * bn + b_coo.row[None, :]).ravel()
    cols = (a_coo.col[:, None] * bm + b_coo.col[None, :]).ravel()
    vals = (a_coo.data[:, None] * b_coo.data[None, :]).ravel()
    return COOMatrix(rows, cols, vals, (an * bn, am * bm),
                     check=False).tocsr()


def stencil_poisson_1d(n: int, *, dtype=np.float64) -> CSRMatrix:
    """1-D Laplacian ``tridiag(-1, 2, -1)`` of order *n* (SPD)."""
    return diags({-1: -1.0, 0: 2.0, 1: -1.0}, n, dtype=dtype)


def stencil_poisson_2d(nx: int, ny: int | None = None, *,
                       dtype=np.float64) -> CSRMatrix:
    """5-point 2-D Laplacian on an ``nx × ny`` grid (SPD, order nx*ny)."""
    ny = nx if ny is None else ny
    tx = stencil_poisson_1d(nx, dtype=dtype)
    ty = stencil_poisson_1d(ny, dtype=dtype)
    return _kron_sum(tx, ty)


def stencil_poisson_3d(nx: int, ny: int | None = None, nz: int | None = None,
                       *, dtype=np.float64) -> CSRMatrix:
    """7-point 3-D Laplacian on an ``nx × ny × nz`` grid (SPD)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    a2d = stencil_poisson_2d(nx, ny, dtype=dtype)
    tz = stencil_poisson_1d(nz, dtype=dtype)
    return _kron_sum(a2d, tz)


def _kron_sum(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Kronecker sum ``A ⊗ I + I ⊗ B`` for square A, B."""
    from .ops import add

    ia = eye(a.shape[0], dtype=a.dtype)
    ib = eye(b.shape[0], dtype=b.dtype)
    return add(kron(a, ib), kron(ia, b))


def random_spd(n: int, *, density: float = 0.01, seed: int = 0,
               diag_boost: float = 1.0, value_scale: float = 1.0,
               dtype=np.float64) -> CSRMatrix:
    """Random sparse SPD matrix with controllable diagonal dominance.

    Draws a random strictly-lower pattern, mirrors it for symmetry, and
    sets each diagonal entry to slightly above its row's absolute sum
    plus a uniform shift of ``diag_boost`` times the mean row mass, so
    the result is strictly diagonally dominant with positive diagonal,
    hence SPD.  ``diag_boost`` near 0 gives harder (worse conditioned)
    systems; large values give well-conditioned ones.

    Deterministic for a fixed *seed*.
    """
    if n <= 0:
        raise ShapeError("n must be positive")
    if not (0.0 < density <= 1.0):
        raise ValueError("density must lie in (0, 1]")
    if diag_boost < 0.0:
        raise ValueError("diag_boost must be non-negative")
    rng = np.random.default_rng(seed)
    # Target number of strictly-lower entries.
    total_off = n * (n - 1) // 2
    m = int(min(total_off, max(n, round(density * n * n / 2))))
    if total_off == 0:
        m = 0
    rows = rng.integers(1, n, size=m) if m else np.empty(0, dtype=np.int64)
    cols = (rng.integers(0, np.maximum(rows, 1))
            if m else np.empty(0, dtype=np.int64))
    vals = (rng.standard_normal(m) * value_scale
            if m else np.empty(0, dtype=np.float64))
    all_rows = np.concatenate([rows, cols, np.arange(n)])
    all_cols = np.concatenate([cols, rows, np.arange(n)])
    all_vals = np.concatenate([vals, vals, np.zeros(n)])
    a = COOMatrix(all_rows, all_cols, all_vals.astype(dtype), (n, n),
                  check=False).tocsr()
    # Strict diagonal dominance: diag slightly above the row mass, plus a
    # uniform shift that directly controls the smallest eigenvalue (and
    # hence the conditioning).
    row_abs = np.zeros(n, dtype=np.float64)
    rid = np.repeat(np.arange(n, dtype=np.int64), a.row_lengths())
    off = rid != a.indices
    np.add.at(row_abs, rid[off], np.abs(a.data[off]).astype(np.float64))
    scale = float(row_abs.mean()) if n else 1.0
    scale = scale if scale > 0 else value_scale
    diag_vals = (row_abs * 1.001 + diag_boost * scale
                 + value_scale * 1e-2 + 1e-12)
    diag_mask = rid == a.indices
    a.data[diag_mask] = diag_vals[rid[diag_mask]].astype(dtype)
    return a
