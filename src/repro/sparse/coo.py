"""Coordinate-format sparse matrix.

COO is the assembly format: generators and the Matrix Market reader build
matrices as ``(row, col, value)`` triplets, which are then converted once to
CSR for all computation.  Duplicate entries are summed on conversion, matching
the finite-element assembly convention.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, SparseFormatError

__all__ = ["COOMatrix"]


class COOMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    row, col:
        Integer index arrays of equal length.
    data:
        Values, same length as the index arrays.
    shape:
        ``(n_rows, n_cols)``.
    check:
        Validate index bounds (default ``True``).
    """

    __slots__ = ("row", "col", "data", "shape")

    def __init__(self, row, col, data, shape: tuple[int, int], *,
                 check: bool = True):
        self.row = np.ascontiguousarray(row, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        self.data = np.ascontiguousarray(data)
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        if not (self.row.shape == self.col.shape == self.data.shape):
            raise ShapeError("row, col and data must have identical lengths")
        if self.row.ndim != 1:
            raise ShapeError("COO arrays must be 1-D")
        if check:
            self.check_format()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return int(self.data.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def check_format(self) -> None:
        """Raise :class:`SparseFormatError` if indices are out of bounds."""
        n, m = self.shape
        if self.nnz:
            if self.row.min(initial=0) < 0 or self.row.max(initial=-1) >= n:
                raise SparseFormatError("row index out of bounds")
            if self.col.min(initial=0) < 0 or self.col.max(initial=-1) >= m:
                raise SparseFormatError("column index out of bounds")

    # ------------------------------------------------------------------
    def tocsr(self):
        """Convert to CSR, summing duplicate entries and sorting columns."""
        from .csr import CSRMatrix

        n, m = self.shape
        if self.nnz == 0:
            indptr = np.zeros(n + 1, dtype=np.int64)
            return CSRMatrix(indptr, np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=self.data.dtype), self.shape,
                             check=False)
        order = np.lexsort((self.col, self.row))
        r = self.row[order]
        c = self.col[order]
        v = self.data[order]
        # Collapse duplicates: keep the first of each (r, c) run, sum values.
        new_run = np.empty(r.shape[0], dtype=bool)
        new_run[0] = True
        new_run[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        run_ids = np.cumsum(new_run) - 1
        n_unique = int(run_ids[-1]) + 1
        summed = np.zeros(n_unique, dtype=np.result_type(v.dtype, np.float64)
                          if v.dtype.kind == "f" else v.dtype)
        np.add.at(summed, run_ids, v)
        keep = np.flatnonzero(new_run)
        rows_u = r[keep]
        cols_u = c[keep]
        vals_u = summed.astype(v.dtype, copy=False)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, rows_u + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(indptr, cols_u, vals_u, self.shape, check=False)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def transpose(self) -> "COOMatrix":
        """Return the transpose (shares value storage)."""
        return COOMatrix(self.col, self.row, self.data,
                         (self.shape[1], self.shape[0]), check=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"dtype={self.data.dtype})")
