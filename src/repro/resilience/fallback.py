"""`robust_spcg`: a retry/fallback ladder around the SPCG pipeline.

The paper's protocol simply *drops* configurations that fail to converge
(Section 4).  A production solve cannot: it must degrade gracefully and
report what happened.  :func:`robust_spcg` runs the ladder

    Algorithm-2 chosen ratio → most conservative ratio →
    unsparsified ILU → IC(0) → Jacobi → plain CG

with, at every rung, (1) a :class:`~repro.resilience.guards.ResidualGuard`
that aborts diverging or stagnating attempts early, (2) per-attempt
budgets in iterations *and modeled seconds* (priced by the machine
model, so a rung whose per-iteration cost is high gets proportionally
fewer iterations), and (3) in-rung escalation: a zero pivot retries the
same rung with cuSPARSE-style pivot boosting, an IC(0) breakdown retries
with a Manteuffel diagonal shift, and transient faults (NaN injection,
sync failures) earn one same-rung retry before the ladder descends.

Every attempt is recorded in a structured :class:`RobustSolveReport`
naming its failure class and the rung that finally recovered — the
input the suite aggregates into a failure taxonomy and recovery rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.sparsify import sparsify_magnitude
from ..core.spcg import make_preconditioner
from ..core.wavefront_aware import (SparsificationDecision,
                                    wavefront_aware_sparsify)
from ..errors import ReproError
from ..machine.device import A100, DeviceModel
from ..machine.kernels import iteration_cost
from ..obs.metrics import get_metrics
from ..obs.trace import get_recorder
from ..precond.identity import IdentityPreconditioner
from ..solvers.cg import pcg
from ..solvers.result import SolveResult, TerminationReason
from ..solvers.stopping import StoppingCriterion
from ..sparse.csr import CSRMatrix
from .guards import FailureClass, GuardConfig, ResidualGuard, classify_failure

__all__ = ["FallbackRung", "FallbackPolicy", "AttemptRecord",
           "RobustSolveReport", "default_ladder", "robust_spcg"]

#: Failure classes worth one same-rung retry (the fault may be transient).
_TRANSIENT = frozenset({FailureClass.NAN_OR_INF, FailureClass.SYNC_FAILURE})


@dataclass(frozen=True)
class FallbackRung:
    """One rung of the ladder.

    Attributes
    ----------
    name:
        Rung identifier — also the scope key fault plans match against.
    method:
        ``"spcg"`` (Algorithm-2 chosen ratio), ``"spcg-fixed"`` (fixed
        *ratio*), ``"pcg"`` (unsparsified preconditioner) or ``"cg"``.
    precond:
        Preconditioner kind for the first three methods.
    ratio:
        Sparsification percentage for ``"spcg-fixed"``.
    k:
        Fill level when *precond* is ``"iluk"``.
    """

    name: str
    method: str
    precond: str | None = None
    ratio: float | None = None
    k: int = 1


def default_ladder(preconditioner: str = "ilu0", *, k: int = 1,
                   ratios: tuple[float, ...] = (10.0, 5.0, 1.0)
                   ) -> tuple[FallbackRung, ...]:
    """The default chosen→safe→full→IC0→FSAI→Jacobi→CG ladder.

    Rungs that would duplicate an earlier one (e.g. the unsparsified
    rung when *preconditioner* is already ``"ic0"``) are elided.  The
    FSAI rung sits between IC(0) and Jacobi: it needs no factorization
    at all (per-row dense solves — a zero pivot cannot occur), its
    ``Gᵀ G`` operator is SPD by construction, and its barrier-free
    apply sidesteps the wavefront path entirely — so it catches
    factorization breakdowns IC(0) shares with ILU while remaining a
    far stronger rung than bare Jacobi.  SPAI is deliberately absent:
    its symmetrized fit is not guaranteed SPD, which a *fallback* rung
    must be.
    """
    rungs = [
        FallbackRung("spcg", "spcg", preconditioner, k=k),
        FallbackRung("spcg-safe", "spcg-fixed", preconditioner,
                     ratio=float(min(ratios)), k=k),
        FallbackRung("full", "pcg", preconditioner, k=k),
    ]
    if preconditioner != "ic0":
        rungs.append(FallbackRung("ic0", "pcg", "ic0"))
    if preconditioner != "fsai":
        rungs.append(FallbackRung("fsai", "pcg", "fsai"))
    if preconditioner != "jacobi":
        rungs.append(FallbackRung("jacobi", "pcg", "jacobi"))
    rungs.append(FallbackRung("cg", "cg"))
    return tuple(rungs)


@dataclass(frozen=True)
class FallbackPolicy:
    """Knobs of the fallback ladder.

    Attributes
    ----------
    rungs:
        The ladder; :func:`default_ladder` (built from the call-site
        preconditioner/ratios) when ``None``.
    max_iters_per_attempt:
        Iteration cap per attempt (the criterion's cap when ``None``).
    seconds_budget_per_attempt:
        Modeled wall-clock budget per attempt; translated into an extra
        iteration cap via the machine model's per-iteration cost on
        *device*.  ``None`` disables it.
    device:
        Machine model pricing the seconds budget.
    guard:
        Health-monitor thresholds (see :class:`GuardConfig`).
    pivot_boost_retry:
        Retry a rung whose factorization hit a zero pivot with boosting
        enabled (magnitude *pivot_boost*).
    pivot_boost:
        Relative boost magnitude for the escalated retry.
    ic0_shift_retry:
        Retry an IC(0) breakdown with diagonal shift *ic0_shift*.
    ic0_shift:
        Relative Manteuffel shift for the escalated retry.
    transient_retries:
        Same-rung retries earned by transient failure classes
        (NaN/Inf injection, sync failures).
    """

    rungs: tuple[FallbackRung, ...] | None = None
    max_iters_per_attempt: int | None = None
    seconds_budget_per_attempt: float | None = None
    device: DeviceModel = A100
    guard: GuardConfig = field(default_factory=GuardConfig)
    pivot_boost_retry: bool = True
    pivot_boost: float = 1e-4
    ic0_shift_retry: bool = True
    ic0_shift: float = 1e-2
    transient_retries: int = 1


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of the ladder (one build + solve)."""

    rung: str
    method: str
    preconditioner: str | None
    ratio_percent: float
    converged: bool
    n_iters: int
    final_residual: float
    failure: FailureClass | None
    detail: str = ""
    pivot_boosted: bool = False
    shifted: bool = False
    modeled_seconds: float = float("nan")

    @property
    def failure_name(self) -> str:
        """Taxonomy string (empty when the attempt converged)."""
        return self.failure.value if self.failure is not None else ""


@dataclass
class RobustSolveReport:
    """Structured outcome of :func:`robust_spcg`.

    Attributes
    ----------
    attempts:
        Every attempt in execution order, failed ones included.
    result:
        The converged :class:`SolveResult`, or the best-effort result of
        the attempt with the smallest final residual when nothing
        converged (``None`` only if every attempt died before solving).
    converged:
        Whether any rung met the tolerance.
    recovered_by:
        Name of the rung that converged (``None`` when none did).
    decision:
        Algorithm 2's diagnostic for the first rung (``None`` when the
        ladder never ran an ``"spcg"`` rung).
    """

    attempts: list[AttemptRecord]
    result: SolveResult | None
    converged: bool
    recovered_by: str | None
    decision: SparsificationDecision | None = None

    @property
    def x(self) -> np.ndarray | None:
        """Best-effort solution vector."""
        return self.result.x if self.result is not None else None

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def recovered(self) -> bool:
        """Converged only after at least one failed attempt."""
        return self.converged and len(self.attempts) > 1

    @property
    def failure_classes(self) -> tuple[str, ...]:
        """Failure-class names of the failed attempts, in order."""
        return tuple(a.failure_name for a in self.attempts
                     if a.failure is not None)

    def summary(self) -> str:
        """One line per attempt, human-readable."""
        lines = []
        for a in self.attempts:
            status = "converged" if a.converged else a.failure_name
            extras = "".join([" [boosted]" if a.pivot_boosted else "",
                              " [shifted]" if a.shifted else ""])
            lines.append(f"{a.rung:10s} {a.method:10s} "
                         f"iters={a.n_iters:4d} "
                         f"residual={a.final_residual:.3e} "
                         f"{status}{extras}")
        tail = (f"recovered by {self.recovered_by!r}" if self.converged
                else "all rungs failed")
        return "\n".join(lines + [tail])


def _attempt_criterion(crit: StoppingCriterion, policy: FallbackPolicy,
                       per_iter_seconds: float) -> StoppingCriterion:
    """Per-attempt stopping rule: tolerance unchanged, cap tightened by
    the policy's iteration and modeled-seconds budgets."""
    cap = policy.max_iters_per_attempt or crit.max_iters
    budget = policy.seconds_budget_per_attempt
    if budget is not None and per_iter_seconds > 0:
        cap = min(cap, max(1, int(budget / per_iter_seconds)))
    if cap == crit.max_iters:
        return crit
    return replace(crit, max_iters=int(cap))


def robust_spcg(a: CSRMatrix, b: np.ndarray, *,
                policy: FallbackPolicy | None = None,
                preconditioner: str = "ilu0", k: int = 1,
                tau: float = 1.0, omega: float = 10.0,
                ratios: tuple[float, ...] = (10.0, 5.0, 1.0),
                criterion: StoppingCriterion | None = None,
                x0: np.ndarray | None = None,
                callback=None, fault_plan=None,
                cache=None) -> RobustSolveReport:
    """Solve ``A x = b``, falling back until something converges.

    Parameters match :func:`repro.core.spcg.spcg` plus:

    policy:
        :class:`FallbackPolicy` (defaults: full ladder, pivot-boost and
        shift escalation, one transient retry, guards on).
    callback:
        Chained in front of the health guard of every attempt.
    fault_plan:
        A :class:`~repro.resilience.faults.FaultPlan` threaded through
        every rung (fault scopes match rung names) — the testability
        hook that makes the ladder's recovery claims verifiable.
    cache:
        Forwarded to :func:`~repro.core.spcg.make_preconditioner` on
        every rung: an :class:`~repro.perf.ArtifactCache`, ``False`` to
        bypass caching entirely, or ``None`` for the process default.
        Rungs whose matrix a fault plan actually corrupted bypass the
        cache *unconditionally* — corrupted factors never occupy cache
        slots.  Keys are content-addressed, so a corrupted ``Â`` can
        never *alias* a clean entry either way.

    Returns
    -------
    RobustSolveReport
        Never raises on failure; ``report.converged`` and
        ``report.attempts`` carry the full story.
    """
    policy = policy or FallbackPolicy()
    crit = criterion or StoppingCriterion.paper_default()
    rungs = policy.rungs or default_ladder(preconditioner, k=k,
                                           ratios=ratios)
    b = np.asarray(b)
    b_norm = float(np.linalg.norm(b))
    guard_cfg = policy.guard
    if guard_cfg.floor < crit.threshold(b_norm):
        guard_cfg = replace(guard_cfg, floor=crit.threshold(b_norm))

    attempts: list[AttemptRecord] = []
    decision: SparsificationDecision | None = None
    best: SolveResult | None = None

    def record(rung: FallbackRung, ratio: float, *, boosted=False,
               shifted=False, solve: SolveResult | None = None,
               exc: BaseException | None = None,
               seconds: float = float("nan")) -> FailureClass | None:
        nonlocal best
        if solve is not None:
            failure = classify_failure(solve)
            n_iters, resid = solve.n_iters, solve.final_residual
            detail = solve.reason.value
            if solve.converged or best is None or (
                    np.isfinite(resid)
                    and resid < (best.final_residual
                                 if np.isfinite(best.final_residual)
                                 else np.inf)):
                best = solve
        else:
            failure = classify_failure(exc)
            n_iters, resid = 0, float("nan")
            detail = f"{type(exc).__name__}: {exc}"
        attempts.append(AttemptRecord(
            rung=rung.name, method=rung.method,
            preconditioner=rung.precond, ratio_percent=ratio,
            converged=solve is not None and solve.converged,
            n_iters=n_iters, final_residual=resid, failure=failure,
            detail=detail, pivot_boosted=boosted, shifted=shifted,
            modeled_seconds=seconds))
        rec = get_recorder()
        if rec.enabled:
            rec.emit("fallback_rung", rung=rung.name, method=rung.method,
                     ratio_percent=ratio,
                     converged=attempts[-1].converged,
                     n_iters=n_iters,
                     failure=attempts[-1].failure_name,
                     detail=detail, boosted=boosted, shifted=shifted,
                     modeled_seconds=seconds)
            if solve is not None and \
                    solve.reason is TerminationReason.GUARD_TRIPPED:
                rec.emit("guard_trip", rung=rung.name,
                         detail=str(solve.extra.get("abort", "")),
                         n_iters=n_iters)
        get_metrics().inc("robust.attempts")
        if failure is not None:
            get_metrics().inc(f"robust.failures.{failure.value}")
        return failure

    def run_once(rung: FallbackRung, *, boosted: bool,
                 shifted: bool) -> FailureClass | None:
        """One build + solve; returns the failure class (None = success)."""
        nonlocal decision
        # -- matrix selection ------------------------------------------
        ratio = 0.0
        rung_cache = cache
        try:
            if rung.method == "spcg":
                if decision is None:
                    decision = wavefront_aware_sparsify(
                        a, tau=tau, omega=omega, ratios=ratios)
                m_mat, ratio = decision.a_hat, decision.chosen_ratio
            elif rung.method == "spcg-fixed":
                ratio = float(rung.ratio if rung.ratio is not None
                              else min(ratios))
                m_mat = sparsify_magnitude(a, ratio).a_hat
            else:
                m_mat = a
            if fault_plan is not None and rung.method != "cg":
                corrupted = fault_plan.corrupt_matrix(m_mat, rung.name)
                if corrupted is not m_mat:
                    # The ladder's invariant: corrupted factors never
                    # occupy cache slots.  A fault fired, so this rung's
                    # build bypasses every cache unconditionally.
                    rung_cache = False
                m_mat = corrupted

            # -- preconditioner build ----------------------------------
            if rung.method == "cg":
                m = None
            else:
                kwargs: dict = {"k": rung.k}
                if rung.precond in ("ilu0", "iluk"):
                    kwargs["raise_on_zero_pivot"] = not boosted
                    if boosted:
                        kwargs["pivot_boost"] = policy.pivot_boost
                if rung.precond == "ic0" and shifted:
                    kwargs["shift"] = policy.ic0_shift
                m = make_preconditioner(m_mat, rung.precond,
                                        cache=rung_cache, **kwargs)
                if fault_plan is not None:
                    m = fault_plan.wrap_preconditioner(m, rung.name)
        except (ReproError, FloatingPointError, ZeroDivisionError) as exc:
            return record(rung, ratio, boosted=boosted, shifted=shifted,
                          exc=exc)

        # -- budgets and solve -----------------------------------------
        cost = iteration_cost(
            policy.device, a,
            m if m is not None else IdentityPreconditioner(a.n_rows)).total
        attempt_crit = _attempt_criterion(crit, policy, cost)
        guard = ResidualGuard(guard_cfg, chain=callback)
        try:
            solve = pcg(a, b, m, criterion=attempt_crit, x0=x0,
                        callback=guard)
        except (ReproError, FloatingPointError, ZeroDivisionError) as exc:
            return record(rung, ratio, boosted=boosted, shifted=shifted,
                          exc=exc)
        return record(rung, ratio, boosted=boosted, shifted=shifted,
                      solve=solve, seconds=solve.n_iters * cost)

    recovered_by: str | None = None
    for rung in rungs:
        boosted = shifted = False
        transient_left = policy.transient_retries
        while True:
            failure = run_once(rung, boosted=boosted, shifted=shifted)
            if failure is None:
                recovered_by = rung.name
                break
            # -- in-rung escalation ------------------------------------
            if failure is FailureClass.ZERO_PIVOT and not boosted \
                    and policy.pivot_boost_retry \
                    and rung.precond in ("ilu0", "iluk"):
                boosted = True
                continue
            if failure is FailureClass.INDEFINITE and not shifted \
                    and policy.ic0_shift_retry and rung.precond == "ic0":
                shifted = True
                continue
            if failure in _TRANSIENT and transient_left > 0:
                transient_left -= 1
                continue
            break
        if recovered_by is not None:
            break

    report = RobustSolveReport(
        attempts=attempts, result=best,
        converged=recovered_by is not None,
        recovered_by=recovered_by, decision=decision)
    metrics = get_metrics()
    metrics.inc("robust.solves")
    if report.converged:
        metrics.inc("robust.converged")
    if report.recovered:
        metrics.inc("robust.recovered")
    return report
