"""Resilience layer: fault injection, breakdown guards, robust solves.

SPCG perturbs the preconditioner on purpose, so breakdown is a design
consequence, not an edge case: sparsification can zero a pivot, degrade
a factor into uselessness, or strip definiteness from ``Â``.  The paper
handles this by dropping non-converging configurations from its
statistics; a production solver must instead degrade gracefully and say
what happened.  This subpackage provides the three pieces:

* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  layer (:class:`FaultPlan`) able to zero pivots, corrupt sparsified
  values, inject NaN/Inf into preconditioner applies and fail modeled
  device syncs, so every robustness claim below is testable;
* :mod:`~repro.resilience.guards` — residual-stream health monitors
  (divergence, stagnation, NaN) that abort a doomed solve early via the
  solver's callback hook, plus the breakdown classifier mapping any
  outcome onto the :class:`FailureClass` taxonomy;
* :mod:`~repro.resilience.fallback` — :func:`robust_spcg`, a fallback
  ladder (chosen ratio → safe ratio → unsparsified ILU → IC(0) →
  Jacobi → CG) with per-attempt iteration/modeled-seconds budgets,
  pivot-boost and diagonal-shift escalation, and a structured
  :class:`RobustSolveReport`.
"""

from .faults import (APPLY_FAULTS, MATRIX_FAULTS, TIMELINE_FAULTS,
                     FaultPlan, FaultSpec, FaultyPreconditioner)
from .guards import (FailureClass, GuardConfig, GuardTrip, ResidualGuard,
                     classify_failure)
from .fallback import (AttemptRecord, FallbackPolicy, FallbackRung,
                       RobustSolveReport, default_ladder, robust_spcg)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultyPreconditioner",
    "MATRIX_FAULTS",
    "APPLY_FAULTS",
    "TIMELINE_FAULTS",
    "FailureClass",
    "GuardTrip",
    "GuardConfig",
    "ResidualGuard",
    "classify_failure",
    "FallbackRung",
    "FallbackPolicy",
    "AttemptRecord",
    "RobustSolveReport",
    "default_ladder",
    "robust_spcg",
]
