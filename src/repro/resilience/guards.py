"""Mid-solve health monitoring built on the PCG callback.

Algorithm 1 already reports ``(k, ‖r_k‖)`` after every convergence check;
:class:`ResidualGuard` turns that stream into three online health checks
— NaN/Inf detection, divergence detection, and residual-plateau
(stagnation) detection — and aborts the solve via
:class:`repro.errors.AbortSolve` the moment one trips.  The point of
aborting *early* is budget: a stagnating solve otherwise burns its full
1000-iteration cap before the fallback ladder gets a chance to try a
safer configuration.

:func:`classify_failure` is the breakdown classifier: it maps whatever a
solve attempt produced — a :class:`~repro.solvers.result.SolveResult`
with a non-converged :class:`~repro.solvers.result.TerminationReason`, a
factorization exception, a guard trip — onto the small
:class:`FailureClass` taxonomy the suite aggregates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import (AbortSolve, DeviceModelError, FillLimitExceeded,
                      NotPositiveDefiniteError, ReproError,
                      SingularFactorError)
from ..solvers.result import SolveResult, TerminationReason

__all__ = ["FailureClass", "GuardTrip", "GuardConfig", "ResidualGuard",
           "classify_failure"]


class FailureClass(enum.Enum):
    """Failure taxonomy of one solve attempt."""

    #: Factorization met a zero (or negligible) pivot.
    ZERO_PIVOT = "zero_pivot"
    #: Indefiniteness detected — non-positive CG curvature or an IC(0)
    #: non-positive pivot (the sparsified Â lost definiteness).
    INDEFINITE = "indefinite"
    #: NaN/Inf appeared in the iteration or the preconditioner apply.
    NAN_OR_INF = "nan_or_inf"
    #: Residual norm grew far beyond its best value (guard-detected).
    DIVERGENCE = "divergence"
    #: Residual plateaued: no meaningful reduction over the guard window.
    STAGNATION = "stagnation"
    #: Iteration budget exhausted without meeting the tolerance.
    NO_CONVERGENCE = "no_convergence"
    #: Symbolic ILU(K) fill exceeded its cap.
    FILL_EXPLOSION = "fill_explosion"
    #: The (modeled) device failed — injected sync/launch failure.
    SYNC_FAILURE = "sync_failure"
    #: Silent data corruption caught by a detector — ABFT column-
    #: checksum mismatch on the batched SpMV or true-vs-recurrence
    #: residual drift beyond tolerance (bit-flip-style SDC).
    SILENT_CORRUPTION = "silent_corruption"
    #: The (modeled) device crashed outright mid-block; recovery is a
    #: checkpoint restart, not a numerical fallback.
    DEVICE_CRASH = "device_crash"
    #: Anything else the classifier could not name.
    UNKNOWN = "unknown"


class GuardTrip(AbortSolve):
    """Raised by :class:`ResidualGuard` to abort an unhealthy solve.

    Because it subclasses :class:`repro.errors.AbortSolve`,
    :func:`repro.solvers.pcg` converts it into a ``GUARD_TRIPPED``
    result (keeping the best-effort iterate) rather than propagating.
    """

    def __init__(self, failure: FailureClass, iteration: int,
                 residual: float, detail: str = ""):
        self.failure = failure
        self.iteration = int(iteration)
        self.residual = float(residual)
        super().__init__(
            detail or f"{failure.value} at iteration {iteration} "
                      f"(residual {residual:.3e})")


@dataclass(frozen=True)
class GuardConfig:
    """Tunable thresholds of :class:`ResidualGuard`.

    Attributes
    ----------
    divergence_factor:
        Trip :data:`FailureClass.DIVERGENCE` when ``‖r_k‖`` exceeds this
        multiple of the best residual seen so far.
    stagnation_window:
        Number of *completed* iterations a plateau must span.
    stagnation_improvement:
        Minimum relative reduction required over the window: the guard
        trips :data:`FailureClass.STAGNATION` when
        ``min(recent) > (1 - improvement) · min(older)``.
    check_finite:
        Trip :data:`FailureClass.NAN_OR_INF` on a non-finite residual
        (the solver would also catch it one line later; tripping in the
        guard attributes it to the taxonomy).
    floor:
        Residuals at or below this value never trip (set to the stopping
        threshold so a solve that has effectively converged is not
        misread as stagnating).
    min_iterations:
        Grace period before divergence/stagnation checks engage.
    """

    divergence_factor: float = 1e4
    stagnation_window: int = 25
    stagnation_improvement: float = 1e-3
    check_finite: bool = True
    floor: float = 0.0
    min_iterations: int = 5

    def __post_init__(self):
        if self.divergence_factor <= 1.0:
            raise ValueError("divergence_factor must exceed 1")
        if self.stagnation_window < 2:
            raise ValueError("stagnation_window must be at least 2")
        if not 0.0 < self.stagnation_improvement < 1.0:
            raise ValueError("stagnation_improvement must lie in (0, 1)")


class ResidualGuard:
    """Callback object watching the residual stream of one solve.

    Usage::

        guard = ResidualGuard(GuardConfig(stagnation_window=20))
        result = pcg(a, b, m, callback=guard)
        if result.reason is TerminationReason.GUARD_TRIPPED:
            print(guard.tripped.failure)

    Parameters
    ----------
    config:
        Thresholds; defaults when ``None``.
    chain:
        Optional downstream ``callback(k, r_norm)`` invoked first, so a
        guard composes with user callbacks instead of replacing them.
    """

    def __init__(self, config: GuardConfig | None = None,
                 chain=None):
        self.config = config or GuardConfig()
        self.chain = chain
        self.history: list[float] = []
        self.tripped: GuardTrip | None = None

    def reset(self) -> None:
        self.history.clear()
        self.tripped = None

    def _trip(self, failure: FailureClass, k: int, r_norm: float) -> None:
        self.tripped = GuardTrip(failure, k, r_norm)
        raise self.tripped

    def __call__(self, k: int, r_norm: float) -> None:
        if self.chain is not None:
            self.chain(k, r_norm)
        cfg = self.config
        self.history.append(float(r_norm))
        if cfg.check_finite and not np.isfinite(r_norm):
            self._trip(FailureClass.NAN_OR_INF, k, r_norm)
        if r_norm <= cfg.floor or k < cfg.min_iterations:
            return
        best = min(self.history)
        if r_norm > cfg.divergence_factor * best:
            self._trip(FailureClass.DIVERGENCE, k, r_norm)
        w = cfg.stagnation_window
        if len(self.history) > 2 * w:
            older = min(self.history[:-w])
            recent = min(self.history[-w:])
            if older > 0 and recent > (1.0 - cfg.stagnation_improvement) \
                    * older:
                self._trip(FailureClass.STAGNATION, k, r_norm)


def classify_failure(outcome) -> FailureClass | None:
    """Map a solve outcome onto the :class:`FailureClass` taxonomy.

    Parameters
    ----------
    outcome:
        Either a :class:`~repro.solvers.result.SolveResult` or the
        exception a preconditioner build / solve raised.

    Returns
    -------
    FailureClass | None
        ``None`` for a converged result (no failure to classify).
    """
    if isinstance(outcome, SolveResult):
        if outcome.converged:
            return None
        if outcome.reason is TerminationReason.GUARD_TRIPPED:
            abort = outcome.extra.get("abort")
            if isinstance(abort, GuardTrip):
                return abort.failure
            return FailureClass.UNKNOWN
        return {
            TerminationReason.MAX_ITERATIONS: FailureClass.NO_CONVERGENCE,
            TerminationReason.INDEFINITE: FailureClass.INDEFINITE,
            TerminationReason.NUMERICAL_BREAKDOWN: FailureClass.NAN_OR_INF,
            TerminationReason.CORRUPTED: FailureClass.SILENT_CORRUPTION,
            TerminationReason.DEVICE_CRASH: FailureClass.DEVICE_CRASH,
        }.get(outcome.reason, FailureClass.UNKNOWN)
    if isinstance(outcome, GuardTrip):
        return outcome.failure
    if isinstance(outcome, SingularFactorError):
        return FailureClass.ZERO_PIVOT
    if isinstance(outcome, NotPositiveDefiniteError):
        return FailureClass.INDEFINITE
    if isinstance(outcome, FillLimitExceeded):
        return FailureClass.FILL_EXPLOSION
    if isinstance(outcome, DeviceModelError):
        return FailureClass.SYNC_FAILURE
    if isinstance(outcome, FloatingPointError):
        return FailureClass.NAN_OR_INF
    if isinstance(outcome, (ReproError, ArithmeticError)):
        return FailureClass.UNKNOWN
    raise TypeError(f"cannot classify {type(outcome).__name__}")
