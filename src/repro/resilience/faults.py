"""Deterministic fault injection for the SPCG pipeline.

Sparsification deliberately perturbs the preconditioner, so the failure
modes the paper works around by *dropping configurations* (Section 4) —
zeroed pivots, degraded factors, NaN propagation — must be reproducible
on demand for the resilience layer to be testable.  A :class:`FaultPlan`
is a declarative, seeded list of :class:`FaultSpec` entries; the SPCG
driver and the :func:`~repro.resilience.fallback.robust_spcg` ladder
thread the plan through three injection points:

* **matrix faults** (``zero_pivot``, ``flip_diagonal``,
  ``corrupt_values``) corrupt the *sparsified* matrix before the
  preconditioner is factored — modeling sparsification zeroing a pivot
  or memory corruption of Â's value array;
* **apply faults** (``nan_apply``, ``negate_apply``, ``freeze_apply``,
  ``scale_apply``) wrap the preconditioner and perturb ``z = M⁻¹ r`` at
  a chosen application count — modeling transient kernel faults;
* **timeline faults** (``sync_failure``) hook the machine model's
  :class:`~repro.machine.timeline.Timeline` and fail a recorded kernel
  event — modeling a lost device synchronization.

Every fault is deterministic: triggers are counted, random corruption is
seeded, and exhausted faults stay exhausted across retries (which is what
lets the fallback ladder demonstrate recovery from *transient* faults).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DeviceModelError
from ..machine.timeline import KernelEvent
from ..precond.base import Preconditioner
from ..sparse.csr import CSRMatrix

__all__ = ["FaultSpec", "FaultPlan", "FaultyPreconditioner",
           "MATRIX_FAULTS", "APPLY_FAULTS", "TIMELINE_FAULTS"]

#: Fault kinds that corrupt the matrix handed to the factorization.
MATRIX_FAULTS = ("zero_pivot", "flip_diagonal", "corrupt_values")
#: Fault kinds that perturb preconditioner applications.
APPLY_FAULTS = ("nan_apply", "negate_apply", "freeze_apply", "scale_apply",
                "offset_apply")
#: Fault kinds that fire inside the machine-model timeline.
TIMELINE_FAULTS = ("sync_failure",)

_ALL_KINDS = MATRIX_FAULTS + APPLY_FAULTS + TIMELINE_FAULTS


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Attributes
    ----------
    kind:
        One of :data:`MATRIX_FAULTS`, :data:`APPLY_FAULTS` or
        :data:`TIMELINE_FAULTS`.
    rungs:
        Fallback-ladder rung names (see
        :mod:`~repro.resilience.fallback`) the fault is scoped to;
        ``None`` applies everywhere.  Scoping a fault to ``("spcg",)``
        models a failure specific to the sparsified configuration, which
        the ladder escapes by falling back.
    rows:
        Target rows for ``zero_pivot`` / ``flip_diagonal``.
    at_apply:
        First preconditioner application (0-based count) an apply fault
        fires at.
    max_triggers:
        Fire at most this many times across the whole plan lifetime
        (``None`` = unlimited).  A finite count models *transient*
        faults that a retry survives.
    fraction, scale:
        For ``corrupt_values``: fraction of stored entries perturbed and
        the multiplicative factor applied; ``scale`` is also the factor
        of ``scale_apply`` and the additive magnitude of
        ``offset_apply`` (a stuck-at-value output fault — large offsets
        destroy the CG recurrence through catastrophic cancellation and
        produce genuine residual divergence, which pure scalings and
        sign flips cannot: PCG's α and β ratios cancel those out).
    value:
        Injected value for ``nan_apply`` (default NaN; use ``inf`` to
        model an overflow instead).
    event_match:
        Substring matched against ``KernelEvent.name``/``phase`` for
        ``sync_failure`` (empty = match every event).
    seed:
        RNG seed for the random corruption kinds.
    """

    kind: str
    rungs: tuple[str, ...] | None = None
    rows: tuple[int, ...] = ()
    at_apply: int = 0
    max_triggers: int | None = None
    fraction: float = 0.05
    scale: float = 1e6
    value: float = float("nan")
    event_match: str = ""
    seed: int = 0

    def __post_init__(self):
        if self.kind not in _ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {_ALL_KINDS}")


class FaultPlan:
    """A deterministic schedule of faults plus its trigger bookkeeping.

    The plan is the single mutable object threaded through a solve (or a
    whole fallback ladder): each spec's trigger count lives here, so a
    fault with ``max_triggers=1`` that fired during attempt 1 stays
    exhausted during attempt 2.  :meth:`reset` rearms everything.
    """

    def __init__(self, specs: FaultSpec | list[FaultSpec]
                 | tuple[FaultSpec, ...] = ()):
        if isinstance(specs, FaultSpec):
            specs = (specs,)
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self._fired: dict[int, int] = {i: 0 for i in range(len(self.specs))}
        self._frozen: dict[int, np.ndarray] = {}

    # -- bookkeeping ------------------------------------------------------
    def reset(self) -> None:
        """Rearm every fault (clears trigger counts and frozen caches)."""
        self._fired = {i: 0 for i in range(len(self.specs))}
        self._frozen.clear()

    def fired(self, spec: FaultSpec) -> int:
        """How many times *spec* has triggered so far."""
        return self._fired[self.specs.index(spec)]

    def total_fired(self) -> int:
        """Total triggers across all specs (diagnostics)."""
        return sum(self._fired.values())

    def _armed(self, idx: int) -> bool:
        spec = self.specs[idx]
        return (spec.max_triggers is None
                or self._fired[idx] < spec.max_triggers)

    @staticmethod
    def _in_scope(spec: FaultSpec, rung: str | None) -> bool:
        return spec.rungs is None or rung is None or rung in spec.rungs

    def _active(self, kinds: tuple[str, ...], rung: str | None
                ) -> list[int]:
        return [i for i, s in enumerate(self.specs)
                if s.kind in kinds and self._in_scope(s, rung)
                and self._armed(i)]

    # -- matrix faults ----------------------------------------------------
    def corrupt_matrix(self, a: CSRMatrix, rung: str | None = None
                       ) -> CSRMatrix:
        """Apply every armed matrix fault in scope to a copy of *a*.

        Returns *a* itself when no fault fires (the common path stays
        allocation-free).
        """
        idxs = self._active(MATRIX_FAULTS, rung)
        if not idxs:
            return a
        data = a.data.copy()
        for i in idxs:
            spec = self.specs[i]
            if spec.kind == "zero_pivot":
                pos = _diag_positions(a, spec.rows)
                data[pos] = 0.0
            elif spec.kind == "flip_diagonal":
                pos = _diag_positions(a, spec.rows)
                data[pos] = -np.abs(data[pos])
            else:  # corrupt_values
                rng = np.random.default_rng(spec.seed)
                k = max(1, int(spec.fraction * a.nnz))
                pos = rng.choice(a.nnz, size=min(k, a.nnz), replace=False)
                data[pos] *= spec.scale
            self._fired[i] += 1
        return CSRMatrix(a.indptr, a.indices, data, a.shape, check=False)

    # -- apply faults -----------------------------------------------------
    def wrap_preconditioner(self, m: Preconditioner,
                            rung: str | None = None) -> Preconditioner:
        """Wrap *m* so in-scope apply faults can fire; *m* when none."""
        idxs = [i for i, s in enumerate(self.specs)
                if s.kind in APPLY_FAULTS and self._in_scope(s, rung)]
        if not idxs:
            return m
        return FaultyPreconditioner(m, self, tuple(idxs))

    # -- timeline faults --------------------------------------------------
    def timeline_hook(self, rung: str | None = None):
        """A ``Timeline.fault_hook`` firing in-scope ``sync_failure``
        specs, or ``None`` when the plan has none."""
        idxs = [i for i, s in enumerate(self.specs)
                if s.kind in TIMELINE_FAULTS and self._in_scope(s, rung)]
        if not idxs:
            return None

        def hook(ev: KernelEvent) -> KernelEvent:
            for i in idxs:
                spec = self.specs[i]
                if not self._armed(i):
                    continue
                if spec.event_match and spec.event_match not in ev.name \
                        and spec.event_match not in ev.phase:
                    continue
                self._fired[i] += 1
                raise DeviceModelError(
                    f"injected sync failure on kernel {ev.name!r} "
                    f"(phase {ev.phase!r})")
            return ev

        return hook

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(s.kind for s in self.specs)
        return f"FaultPlan([{kinds}], fired={self.total_fired()})"


def _diag_positions(a: CSRMatrix, rows: tuple[int, ...]) -> np.ndarray:
    """Flat data positions of the diagonal entries of *rows* (skipping
    rows without a stored diagonal)."""
    out = []
    for r in rows:
        if not 0 <= r < a.n_rows:
            raise IndexError(f"fault row {r} out of range for n={a.n_rows}")
        lo, hi = int(a.indptr[r]), int(a.indptr[r + 1])
        k = lo + int(np.searchsorted(a.indices[lo:hi], r))
        if k < hi and a.indices[k] == r:
            out.append(k)
    return np.asarray(out, dtype=np.int64)


class FaultyPreconditioner(Preconditioner):
    """Preconditioner wrapper that perturbs ``apply`` per a fault plan.

    Delegates everything except :meth:`apply` to the wrapped operator so
    the machine model prices the faulty operator exactly like the
    healthy one (a transient fault does not change the cost structure).
    """

    def __init__(self, inner: Preconditioner, plan: FaultPlan,
                 spec_idxs: tuple[int, ...]):
        self._inner = inner
        self._plan = plan
        self._spec_idxs = spec_idxs
        self._applies = 0
        self.name = inner.name

    @property
    def n(self) -> int:
        return self._inner.n

    def apply(self, r: np.ndarray, out: np.ndarray | None = None
              ) -> np.ndarray:
        z = self._inner.apply(r, out=out)
        plan = self._plan
        count = self._applies
        self._applies += 1
        for i in self._spec_idxs:
            spec = plan.specs[i]
            if count < spec.at_apply or not plan._armed(i):
                continue
            plan._fired[i] += 1
            if spec.kind == "nan_apply":
                z = z.copy()
                z[0] = spec.value
            elif spec.kind == "negate_apply":
                z = -z
            elif spec.kind == "scale_apply":
                z = z * spec.scale
            elif spec.kind == "offset_apply":
                z = z + spec.scale
            else:  # freeze_apply: replay the first perturbed-era output
                frozen = plan._frozen.get(i)
                if frozen is None:
                    plan._frozen[i] = z.copy()
                else:
                    z = frozen.copy()
        return z

    def apply_nnz(self) -> int:
        return self._inner.apply_nnz()

    def apply_levels(self) -> tuple[int, int]:
        return self._inner.apply_levels()

    def __getattr__(self, item):
        # Expose e.g. ``solvers``/``factors`` only when the wrapped
        # preconditioner has them, so cost-model duck typing still works.
        return getattr(self._inner, item)
