"""Ablation: sparsification vs HDagg-style level aggregation.

The related work (Section 6.1) reduces synchronization cost by
*scheduling* — packing consecutive wavefronts into one kernel with cheap
intra-kernel syncs — while SPCG reduces it by *changing the matrix*.
This ablation prices four variants of the triangular-solve pair on the
A100 model:

    baseline / aggregated / SPCG / SPCG + aggregated

showing (a) both attack the same bottleneck, (b) they compose, and
(c) sparsification additionally removes work, which aggregation cannot.

The wall-clock benchmark times the aggregation transformation.
"""

import numpy as np
from conftest import emit, study_names

from repro.core import wavefront_aware_sparsify
from repro.datasets import load
from repro.graph import aggregate_levels
from repro.harness import render_table
from repro.machine import A100, time_trisolve, time_trisolve_aggregated
from repro.precond import ILU0Preconditioner
from repro.util import gmean

NAMES = study_names()


def _apply_times(m: ILU0Preconditioner) -> tuple[float, float]:
    """(plain, aggregated) modeled times of one preconditioner apply."""
    plain = agg = 0.0
    for solver in m.solvers():
        rows, nnz = solver.kernel_profile()
        plain += time_trisolve(A100, rows, nnz)
        packed = aggregate_levels(solver.schedule,
                                  max_group_rows=A100.row_slots)
        agg += time_trisolve_aggregated(A100, rows, nnz, packed.group_ptr)
    return plain, agg


def test_aggregation_ablation(benchmark):
    speed_agg, speed_spcg, speed_both = [], [], []
    for name in NAMES:
        a = load(name)
        try:
            m0 = ILU0Preconditioner(a)
            d = wavefront_aware_sparsify(a)
            m1 = ILU0Preconditioner(d.a_hat, raise_on_zero_pivot=False)
        except Exception:
            continue
        base_plain, base_agg = _apply_times(m0)
        spcg_plain, spcg_agg = _apply_times(m1)
        speed_agg.append(base_plain / base_agg)
        speed_spcg.append(base_plain / spcg_plain)
        speed_both.append(base_plain / spcg_agg)
    text = render_table(
        ["variant", "gmean preconditioner-apply speedup"],
        [["aggregation only", f"{gmean(speed_agg):.2f}×"],
         ["SPCG only", f"{gmean(speed_spcg):.2f}×"],
         ["SPCG + aggregation", f"{gmean(speed_both):.2f}×"]],
        title="Ablation — scheduling (HDagg-style packing) vs "
              "sparsification vs both, ILU(0) apply on A100")
    text += ("\nBoth techniques attack the synchronization bottleneck; "
             "they compose, and the combined variant dominates each "
             "alone.")
    emit("aggregation_ablation.txt", text)

    g_agg, g_spcg, g_both = (gmean(speed_agg), gmean(speed_spcg),
                             gmean(speed_both))
    assert g_agg > 1.0
    assert g_both >= max(g_agg, g_spcg) - 1e-9

    sched = ILU0Preconditioner(load(NAMES[0])).solvers()[0].schedule
    benchmark(aggregate_levels, sched, max_group_rows=A100.row_slots)
