"""Figures 4a/4b: SPCG-ILU(0) speedups on the A100 model.

4a — distribution of per-iteration speedups (histogram, 0.25-wide bins);
4b — end-to-end speedup vs number of nonzeros (scatter, log x).

Paper headline: gmean per-iteration 1.23×, 69.16 % of matrices
accelerated; end-to-end gmean 1.68× (range 0.69–9.61×) on converging
matrices, iterations unchanged for 94.65 %.

The wall-clock benchmark times one full PCG iteration's triangular
solves with the real NumPy wavefront executor, baseline vs sparsified —
the measured analogue of the modeled speedup.
"""

import numpy as np
import pytest
from conftest import emit, scaled_matrix

from repro.core import wavefront_aware_sparsify
from repro.datasets import load
from repro.harness import render_histogram, render_scatter, render_table
from repro.precond import ILU0Preconditioner

REPRESENTATIVE = scaled_matrix("thermal_1600_s102")


def test_fig04_report(ilu0_suite, benchmark):
    agg = benchmark(ilu0_suite.aggregates)
    pi = ilu0_suite.per_iteration_speedups()
    hist = render_histogram(
        pi, title="Figure 4a — SPCG-ILU(0) per-iteration speedup "
                  "distribution (A100 model)")
    nnz, e2e = ilu0_suite.end_to_end_points()
    scatter = render_scatter(
        nnz, np.clip(e2e, 0, 5), title="Figure 4b — SPCG-ILU(0) "
        "end-to-end speedup vs nnz (A100 model, clipped to [0,5])",
        xlabel="nnz", ylabel="speedup", logx=True)
    summary = render_table(
        ["metric", "paper", "measured"],
        [["gmean per-iteration speedup", "1.23×",
          f"{agg.gmean_per_iteration_speedup:.2f}×"],
         ["% matrices accelerated", "69.16%",
          f"{agg.percent_accelerated:.1f}%"],
         ["gmean end-to-end speedup", "1.68×",
          f"{agg.gmean_end_to_end_speedup:.2f}×"],
         ["end-to-end range", "0.69–9.61×",
          f"{e2e.min():.2f}–{e2e.max():.2f}×"],
         ["% iterations unchanged", "94.65%",
          f"{agg.percent_iterations_unchanged:.1f}%"]],
        title="SPCG-ILU(0) on A100 — paper vs measured")
    emit("fig04_ilu0_a100.txt",
         summary + "\n\n" + hist + "\n\n" + scatter)

    assert agg.gmean_per_iteration_speedup > 1.0
    assert agg.gmean_end_to_end_speedup > 1.0
    assert agg.percent_iterations_unchanged > 60.0


@pytest.fixture(scope="module")
def trisolve_pair():
    a = load(REPRESENTATIVE)
    decision = wavefront_aware_sparsify(a)
    base = ILU0Preconditioner(a)
    spcg = ILU0Preconditioner(decision.a_hat, raise_on_zero_pivot=False)
    r = np.ones(a.n_rows)
    return base, spcg, r


def test_fig04_bench_baseline_apply(benchmark, trisolve_pair):
    base, _, r = trisolve_pair
    benchmark(base.apply, r)


def test_fig04_bench_spcg_apply(benchmark, trisolve_pair):
    _, spcg, r = trisolve_pair
    benchmark(spcg.apply, r)
