"""Figures 5a/5b: SPCG-ILU(K) speedups on the A100 model.

Paper headline: gmean per-iteration 1.65×, 80.38 % accelerated;
end-to-end gmean 3.73×, iterations unchanged for 91.61 %.  K is selected
per matrix as the best-converging candidate for the *baseline* and
reused for SPCG (Section 3.3); see conftest for the size-scaled
candidate set.

The wall-clock benchmark times the ILU(K) preconditioner application,
baseline vs sparsified.
"""

import numpy as np
import pytest
from conftest import ILUK_CANDIDATES, emit

from repro.core import wavefront_aware_sparsify
from repro.datasets import load
from repro.harness import render_histogram, render_scatter, render_table

REPRESENTATIVE = "model_reduction_900_s100"


def test_fig05_report(iluk_suite, benchmark):
    agg = benchmark(iluk_suite.aggregates)
    pi = iluk_suite.per_iteration_speedups()
    hist = render_histogram(
        pi, title="Figure 5a — SPCG-ILU(K) per-iteration speedup "
                  "distribution (A100 model)")
    nnz, e2e = iluk_suite.end_to_end_points()
    scatter = render_scatter(
        nnz, np.clip(e2e, 0, 5), title="Figure 5b — SPCG-ILU(K) "
        "end-to-end speedup vs nnz (A100 model, clipped to [0,5])",
        xlabel="nnz", ylabel="speedup", logx=True)
    summary = render_table(
        ["metric", "paper", "measured"],
        [["gmean per-iteration speedup", "1.65×",
          f"{agg.gmean_per_iteration_speedup:.2f}×"],
         ["% matrices accelerated", "80.38%",
          f"{agg.percent_accelerated:.1f}%"],
         ["gmean end-to-end speedup", "3.73×",
          f"{agg.gmean_end_to_end_speedup:.2f}×"],
         ["% iterations unchanged", "91.61%",
          f"{agg.percent_iterations_unchanged:.1f}%"],
         ["K candidates", "{10,20,30,40}", str(ILUK_CANDIDATES)]],
        title="SPCG-ILU(K) on A100 — paper vs measured")
    emit("fig05_iluk_a100.txt",
         summary + "\n\n" + hist + "\n\n" + scatter)

    assert agg.gmean_per_iteration_speedup > 1.0


@pytest.fixture(scope="module")
def iluk_pair():
    from repro.precond import ILUKPreconditioner

    a = load(REPRESENTATIVE)
    decision = wavefront_aware_sparsify(a)
    base = ILUKPreconditioner(a, k=3, raise_on_zero_pivot=False)
    spcg = ILUKPreconditioner(decision.a_hat, k=3,
                              raise_on_zero_pivot=False)
    return base, spcg, np.ones(a.n_rows)


def test_fig05_bench_baseline_apply(benchmark, iluk_pair):
    base, _, r = iluk_pair
    benchmark(base.apply, r)


def test_fig05_bench_spcg_apply(benchmark, iluk_pair):
    _, spcg, r = iluk_pair
    benchmark(spcg.apply, r)
