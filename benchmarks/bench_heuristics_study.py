"""Section 3.2.3 — heuristic-choice analysis.

Two studies from the paper:

1. **Extended ratio ladder** {0.5, 15, 20, 50} beyond the default
   {1, 5, 10}: ratio 0.5 % brings negligible structural change (paper:
   86.92 % of matrices under 5 % relative wavefront reduction, 59.82 %
   with none), while ratio 50 % degrades convergence for most (paper:
   62.62 % fail or at least double their iterations).

2. **Approximate vs exact condition number** in the safety indicator
   (paper: gmean speedup 1.233 vs 1.235, convergence 52.34 % vs 53.28 %
   — the cheap proxy is accurate enough).

The wall-clock benchmark times the cheap indicator vs the exact one.
"""

import numpy as np
import pytest
from conftest import emit, study_names

from repro.core import (convergence_indicator, sparsify_magnitude,
                        wavefront_aware_sparsify)
from repro.core.spcg import make_preconditioner
from repro.datasets import load
from repro.graph import wavefront_count
from repro.harness import render_table
from repro.solvers import StoppingCriterion, pcg

SMALL = study_names()


def test_ratio_ladder_extremes(benchmark):
    rows = []
    n_low_change = 0
    n_zero_change = 0
    n_degraded = 0
    n_total = 0
    crit = StoppingCriterion.paper_default()
    for name in SMALL:
        a = load(name)
        w0 = wavefront_count(a)
        # ratio 0.5%: structural change
        r_small = sparsify_magnitude(a, 0.5)
        w_small = wavefront_count(r_small.a_hat)
        red = 100.0 * (w0 - w_small) / w0
        n_low_change += red < 5.0
        n_zero_change += w_small == w0
        # ratio 50%: convergence damage
        b = a.matvec(np.ones(a.n_rows))
        try:
            m0 = make_preconditioner(a, "ilu0")
            base = pcg(a, b, m0, criterion=crit)
            m50 = make_preconditioner(sparsify_magnitude(a, 50.0).a_hat,
                                      "ilu0")
            agg = pcg(a, b, m50, criterion=crit)
        except Exception:
            n_degraded += 1
            n_total += 1
            continue
        n_total += 1
        if (not agg.converged) or (base.converged
                                   and agg.n_iters >= 2 * base.n_iters):
            n_degraded += 1
    n = len(SMALL)
    text = render_table(
        ["statistic", "paper", "measured"],
        [["ratio 0.5%: <5% wavefront reduction", "86.92%",
          f"{100 * n_low_change / n:.1f}%"],
         ["ratio 0.5%: zero wavefront reduction", "59.82%",
          f"{100 * n_zero_change / n:.1f}%"],
         ["ratio 50%: failed or ≥2× iterations", "62.62%",
          f"{100 * n_degraded / max(n_total, 1):.1f}%"]],
        title="§3.2.3 — extended sparsification-ratio study")
    emit("heuristics_ratio_ladder.txt", text)
    benchmark.pedantic(lambda: sparsify_magnitude(load(SMALL[0]), 0.5),
                       rounds=3, iterations=1)

    assert n_low_change / n > 0.5      # 0.5% barely changes structure
    # 50% must hurt a nontrivial share (paper: 62.6%; the synthetic
    # suite's guaranteed diagonal dominance makes it more forgiving —
    # see EXPERIMENTS.md).
    assert n_degraded / max(n_total, 1) > 0.1


def test_exact_vs_approximate_indicator(benchmark):
    crit = StoppingCriterion.paper_default()
    speed_approx, speed_exact = [], []
    conv_approx = conv_exact = 0
    names = study_names(max_n=1000)[:20]
    from repro.machine import A100, iteration_cost

    for name in names:
        a = load(name)
        b = a.matvec(np.ones(a.n_rows))
        m_base = make_preconditioner(a, "ilu0")
        t_base = iteration_cost(A100, a, m_base).total
        for exact, speeds in ((False, speed_approx), (True, speed_exact)):
            d = wavefront_aware_sparsify(a, exact_indicator=exact)
            try:
                m = make_preconditioner(d.a_hat, "ilu0")
            except Exception:
                continue
            res = pcg(a, b, m, criterion=crit)
            speeds.append(t_base / iteration_cost(A100, a, m).total)
            if exact:
                conv_exact += res.converged
            else:
                conv_approx += res.converged
    from repro.util import gmean

    g_a, g_e = gmean(speed_approx), gmean(speed_exact)
    text = render_table(
        ["indicator", "gmean per-iter speedup", "convergence rate"],
        [["approximate (paper: 1.233 / 52.34%)", f"{g_a:.3f}×",
          f"{100 * conv_approx / len(names):.1f}%"],
         ["exact (paper: 1.235 / 53.28%)", f"{g_e:.3f}×",
          f"{100 * conv_exact / len(names):.1f}%"]],
        title="§3.2.3 — approximate vs exact condition number in "
              "Algorithm 2")
    emit("heuristics_indicator.txt", text)
    benchmark.pedantic(
        lambda: wavefront_aware_sparsify(load(names[0])), rounds=3,
        iterations=1)

    # The cheap proxy must track the exact indicator closely.
    assert abs(g_a - g_e) < 0.25 * max(g_a, g_e)


@pytest.fixture(scope="module")
def indicator_inputs():
    a = load("thermal_900_s100")
    res = sparsify_magnitude(a, 5.0)
    return res.a_hat, res.s


def test_bench_indicator_approximate(benchmark, indicator_inputs):
    a_hat, s = indicator_inputs
    benchmark(convergence_indicator, a_hat, s)


def test_bench_indicator_exact(benchmark, indicator_inputs):
    a_hat, s = indicator_inputs
    benchmark(convergence_indicator, a_hat, s, exact=True)
