"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The
expensive suite sweeps are session-scoped and shared across files; the
``benchmark`` fixture of *pytest-benchmark* times a representative real
kernel so wall-clock numbers accompany the modeled ones.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    ``full``  — the whole 107-matrix registry for ILU(0) (several
    minutes);
    ``quick`` (default) — a stratified 51-matrix subset (n ≤ 1600) that
    preserves every category;
    ``tiny``  — the 17 order-900 category representatives only (CI
    smoke: every bench file runs in seconds, every category is still
    present).  :func:`scaled_matrix` maps the representative single-case
    matrices to their order-900 stand-ins in this mode.
Rendered tables/figures are also written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import SUITE
from repro.harness import run_suite
from repro.machine import A100, EPYC_7413, V100

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

#: Scaled-down ILU(K) fill-level candidates: the paper's {10, 20, 30, 40}
#: target million-row systems; on the CI-sized registry those produce a
#: near-exact factorization (1-iteration baselines), so the benches use a
#: proportional set that keeps ILU(K) genuinely incomplete.
ILUK_CANDIDATES = (1, 2, 3, 5)


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def ilu0_names() -> list[str]:
    if _scale() == "full":
        return [s.name for s in SUITE]
    if _scale() == "tiny":
        return [s.name for s in SUITE if s.n == 900]
    return [s.name for s in SUITE if s.n <= 1600]


def iluk_names() -> list[str]:
    if _scale() == "tiny":
        return [s.name for s in SUITE if s.n == 900]
    return [s.name for s in SUITE if s.n <= 1156]


def study_names(max_n: int = 1156) -> list[str]:
    """Names for the module-level study sweeps, honouring the scale."""
    if _scale() == "tiny":
        return [s.name for s in SUITE if s.n == 900]
    return [s.name for s in SUITE if s.n <= max_n]


def scaled_matrix(name: str) -> str:
    """Map a representative matrix to its order-900 stand-in under tiny.

    ``"thermal_1600_s102" -> "thermal_900_s100"`` when
    ``REPRO_BENCH_SCALE=tiny``; the identity otherwise.  Every category
    has a ``<cat>_900_s100`` entry, so the mapping always resolves.
    """
    if _scale() != "tiny":
        return name
    category = {s.name: s.category for s in SUITE}[name]
    return f"{category}_900_s100"


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    print()
    print(text)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def ilu0_suite():
    """ILU(0) on the A100 model with the fixed-ratio ablations
    (Figs. 4/6/9/10, Tables 1a/2)."""
    return run_suite(ilu0_names(), device=A100, precond="ilu0",
                     run_fixed_ratios=True)


@pytest.fixture(scope="session")
def iluk_suite():
    """ILU(K) on the A100 model (Figs. 5/7, Tables 1b/2)."""
    return run_suite(iluk_names(), device=A100, precond="iluk",
                     k_candidates=ILUK_CANDIDATES, run_fixed_ratios=True)


@pytest.fixture(scope="session")
def ilu0_v100_suite():
    """ILU(0) on the V100 model (Table 2, Fig. 8a)."""
    return run_suite(iluk_names(), device=V100, precond="ilu0",
                     run_fixed_ratios=False)


@pytest.fixture(scope="session")
def iluk_v100_suite():
    """ILU(K) on the V100 model (Table 2, Fig. 8b)."""
    return run_suite(iluk_names(), device=V100, precond="iluk",
                     k_candidates=ILUK_CANDIDATES, run_fixed_ratios=False)


@pytest.fixture(scope="session")
def ilu0_cpu_suite():
    """ILU(0) on the EPYC model (Fig. 8c)."""
    return run_suite(iluk_names(), device=EPYC_7413, precond="ilu0",
                     run_fixed_ratios=False)
