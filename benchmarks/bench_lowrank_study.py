"""Section 4.6 — low-rank (HSS) eligibility of incomplete factors.

The paper explores STRUMPACK's HSS compression on ILU(0)/ILU(K) factors
and finds it rarely triggers: 5.61 % of matrices at default settings;
forcing smaller separators raises coverage to 28.04 % but hurts time and
memory.  We reproduce the scan with our block-rank probe on the
registry's factors at two leaf sizes.

The wall-clock benchmark times the block-rank probe.
"""

import numpy as np
from conftest import emit, study_names

from repro.datasets import load
from repro.harness import render_table
from repro.lowrank import block_rank_profile, hss_eligibility
from repro.precond import ilu0

NAMES = study_names()


def test_lowrank_report(benchmark):
    n_eligible_default = 0
    n_eligible_small = 0
    n_total = 0
    for name in NAMES:
        a = load(name)
        try:
            f = ilu0(a, raise_on_zero_pivot=False)
        except Exception:
            continue
        n_total += 1
        # Default leaf size (STRUMPACK-like) on the upper factor.
        if hss_eligibility(f.upper, block_size=64).eligible:
            n_eligible_default += 1
        # Aggressively small leaves (the "reduced minimum separator"
        # configuration the paper warns against): HSS *triggers* on many
        # more blocks, but — as the paper observes — without real memory
        # savings, so we count triggering, not profitability.
        small = hss_eligibility(f.upper, block_size=16, min_block_nnz=4)
        if small.profile.compressible_fraction >= 0.5:
            n_eligible_small += 1
    text = render_table(
        ["configuration", "paper", "measured"],
        [["HSS eligible, default leaves", "5.61%",
          f"{100 * n_eligible_default / n_total:.1f}%"],
         ["HSS eligible, small separators", "28.04%",
          f"{100 * n_eligible_small / n_total:.1f}%"],
         ["matrices scanned", "107", str(n_total)]],
        title="§4.6 — HSS low-rank eligibility of ILU(0) factors")
    text += ("\nfinding reproduced: incomplete factors rarely expose "
             "compressible off-diagonal blocks; shrinking the leaves "
             "inflates nominal coverage without real savings.")
    emit("lowrank_study.txt", text)
    f0 = ilu0(load(NAMES[0]), raise_on_zero_pivot=False)
    benchmark(hss_eligibility, f0.upper, block_size=64)

    # The paper's qualitative finding: HSS rarely pays off, and small
    # separators nominally trigger more often than the default.
    assert n_eligible_default / n_total < 0.3
    assert n_eligible_small / n_total >= n_eligible_default / n_total


def test_lowrank_bench_probe(benchmark):
    a = load("statmath_900_s100")
    f = ilu0(a, raise_on_zero_pivot=False)
    benchmark(block_rank_profile, f.upper, block_size=64)
