"""Figure 6: sparsified ILU(0) factorization speedup vs nnz.

For each matrix and each fixed ratio t ∈ {1, 5, 10} %, the modeled
level-scheduled factorization time of ILU(0) on Â over that on A.
The paper observes speedup for most matrices, growing with the ratio.

The wall-clock benchmark times the actual numeric factorization (our
vectorized IKJ sweep) on A vs the 10 %-sparsified Â.
"""

import numpy as np
import pytest
from conftest import emit, scaled_matrix

from repro.core import sparsify_magnitude
from repro.datasets import load
from repro.harness import render_scatter, render_table
from repro.machine import A100, time_ilu_factorization
from repro.precond import ILU0Preconditioner, ilu0
from repro.util import gmean

REPRESENTATIVE = scaled_matrix("graphics_1600_s102")


def _factor_time(m: ILU0Preconditioner) -> float:
    fwd, _ = m.solvers()
    rows, nnz = fwd.kernel_profile()
    return time_ilu_factorization(A100, rows, nnz,
                                  m.factors.factor_flops)


def test_fig06_report(ilu0_suite, benchmark):
    benchmark(ilu0_suite.aggregates)
    xs, ys, ts = [], [], []
    for r in ilu0_suite.results:
        if r.baseline.failed:
            continue
        for t, m in r.per_ratio.items():
            if m.failed or m.factor_seconds <= 0:
                continue
            xs.append(r.nnz)
            ys.append(r.baseline.factor_seconds / m.factor_seconds)
            ts.append(t)
    xs = np.array(xs)
    ys = np.array(ys)
    ts = np.array(ts)
    rows = []
    for t in (1.0, 5.0, 10.0):
        sel = ys[ts == t]
        rows.append([f"{t:g}%", f"{gmean(sel):.3f}×",
                     f"{100 * float(np.mean(sel > 1.0)):.1f}%"])
    table = render_table(
        ["ratio", "gmean factorization speedup", "% accelerated"],
        rows, title="Figure 6 — sparsified ILU(0) factorization speedup "
                    "on A100 (paper: improved for most matrices, higher "
                    "ratios slightly better)")
    scatter = render_scatter(
        xs, np.clip(ys, 0, 5), title="Figure 6 — factorization speedup "
        "vs nnz (all ratios pooled, clipped to [0,5])",
        xlabel="nnz", ylabel="speedup", logx=True)
    emit("fig06_factorization.txt", table + "\n\n" + scatter)

    g1 = gmean(ys[ts == 1.0])
    g10 = gmean(ys[ts == 10.0])
    assert g10 >= g1  # higher ratios tend to a greater speedup
    assert g10 > 1.0


@pytest.fixture(scope="module")
def factor_inputs():
    a = load(REPRESENTATIVE)
    a_hat = sparsify_magnitude(a, 10.0).a_hat
    return a, a_hat


def test_fig06_bench_factorize_baseline(benchmark, factor_inputs):
    a, _ = factor_inputs
    benchmark(ilu0, a, raise_on_zero_pivot=False)


def test_fig06_bench_factorize_sparsified(benchmark, factor_inputs):
    _, a_hat = factor_inputs
    benchmark(ilu0, a_hat, raise_on_zero_pivot=False)
