"""Figure 7: per-iteration speedups of SPCG vs the oracle, ILU(K).

The paper overlays both selections on one scatter (speedup vs nnz) to
show the wavefront-aware heuristic lands close to the oracle's upper
bound; 56.14 % of its per-iteration selections match the oracle exactly.

The wall-clock benchmark times Algorithm 2 itself (the selection cost
the heuristics keep low).
"""

import numpy as np
from conftest import emit, scaled_matrix

from repro.core import wavefront_aware_sparsify
from repro.datasets import load
from repro.harness import render_scatter


def test_fig07_report(iluk_suite, benchmark):
    benchmark(iluk_suite.aggregates)
    xs, spcg_y, oracle_y = [], [], []
    for r in iluk_suite.results:
        o = r.oracle
        if o is None or not np.isfinite(r.per_iteration_speedup):
            continue
        xs.append(r.nnz)
        spcg_y.append(r.per_iteration_speedup)
        oracle_y.append(r.oracle_per_iteration_speedup)
    xs = np.array(xs, dtype=float)
    spcg_y = np.clip(np.array(spcg_y), 0, 5)
    oracle_y = np.clip(np.array(oracle_y), 0, 5)
    text = render_scatter(
        xs, spcg_y, overlay=(xs, oracle_y),
        title="Figure 7 — per-iteration speedups of SPCG (*) and Oracle "
              "(o), SPCG-ILU(K) on A100 (clipped to [0,5])",
        xlabel="nnz", ylabel="speedup", logx=True)
    match = float(np.mean(np.isclose(spcg_y, oracle_y)))
    text += (f"\nSPCG equals the oracle speedup on {100 * match:.1f}% of "
             f"matrices (paper: 56.14% of selections match).")
    emit("fig07_oracle_scatter.txt", text)

    # Oracle dominates SPCG pointwise by construction.
    assert np.all(oracle_y >= spcg_y - 1e-9)


def test_fig07_bench_algorithm2(benchmark):
    a = load(scaled_matrix("graphics_1156_s101"))
    benchmark(wavefront_aware_sparsify, a)
