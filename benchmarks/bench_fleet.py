"""Fleet capacity: devices × rps sweep, plus communication pricing.

Not a paper figure — the fleet-scaling trajectory for the ROADMAP's
heavy-traffic north star.  A fixed open-loop Poisson workload over a
pool of distinct fingerprints is served by fleets of N ∈ {1, 2, 4}
modeled devices at several arrival rates; at the saturating rate the
sweep must show real scaling (N=4 throughput ≥ 2× N=1) with zero
unexplained drops.  A second table prices one CG iteration for
``pcg`` / ``pipelined`` / ``s_step`` across fleet widths and asserts
the communication-reduced variants expose strictly less allreduce time
whenever the link latency is nonzero, and that the fleet-path solutions
match sequential ``pcg`` within 1e-8.  The machine-readable summary
lands in ``results/BENCH_fleet.json``.
"""

import json

import numpy as np
from conftest import RESULTS_DIR, _scale, emit

from repro.core.spcg import make_preconditioner
from repro.fleet import (FleetScheduler, comm_iteration_cost,
                         run_fleet_loadgen)
from repro.harness import render_table
from repro.machine import A100, NVLINK
from repro.perf.cache import ArtifactCache
from repro.serve import LoadSpec
from repro.solvers import pcg
from repro.sparse import random_spd

SEED = 12345
DEVICES = (1, 2, 4)
#: The high rate saturates every fleet width (arrivals effectively
#: instantaneous next to service time) — that is where scaling with N
#: must show; the low rate exercises the queued regime.
RATES = (2e3, 1e6)


def _workload():
    if _scale() == "tiny":
        n_mats, n, n_requests = 8, 48, 32
    else:
        n_mats, n, n_requests = 16, 80, 64
    mats = [random_spd(n, density=0.06, seed=100 + s)
            for s in range(n_mats)]
    return mats, n_requests


def _run(mats, n_requests, n_devices, rate):
    fleet = FleetScheduler(n_devices=n_devices, preconditioner="jacobi",
                           hot_threshold=8, cache=ArtifactCache())
    report = run_fleet_loadgen(
        fleet, mats, LoadSpec(n_requests=n_requests, rate_rps=rate,
                              seed=SEED))
    return fleet, report


def test_fleet_capacity_sweep(benchmark):
    mats, n_requests = _workload()
    summary = {"seed": SEED, "n_requests": n_requests,
               "link": NVLINK.name, "sweep": {}, "comm_cost": {}}
    rows = []
    saturated = {}
    for rate in RATES:
        for n_dev in DEVICES:
            fleet, rep = _run(mats, n_requests, n_dev, rate)
            # Zero unexplained drops: everything completes (admission
            # is unbounded here, so any loss would be a scheduler bug).
            assert rep.n_completed == n_requests
            assert rep.n_shed == 0
            key = f"rate={rate:g}/N={n_dev}"
            summary["sweep"][key] = {
                "n_devices": n_dev, "rate_rps": rate,
                "throughput_rps": rep.throughput_rps,
                "p50_modeled_s": rep.latency_percentile(50),
                "p99_modeled_s": rep.latency_percentile(99),
                "mean_occupancy": rep.mean_occupancy,
                "routes_by_device": rep.routes_by_device,
                "n_replicated": rep.n_replicated,
            }
            rows.append([f"{rate:g}", f"{n_dev}",
                         f"{rep.throughput_rps:.0f}",
                         f"{1e3 * rep.latency_percentile(50):.2f}",
                         f"{1e3 * rep.latency_percentile(99):.2f}",
                         f"{rep.mean_occupancy:.3f}",
                         "/".join(str(c) for c in rep.routes_by_device)])
            if rate == max(RATES):
                saturated[n_dev] = rep.throughput_rps
            del fleet
    # The acceptance bar: real scaling at saturating load.
    scaling = saturated[4] / saturated[1]
    summary["saturated_scaling_4x_over_1x"] = scaling
    assert scaling >= 2.0, f"N=4 only {scaling:.2f}x over N=1"

    # Fleet-path solutions must match sequential pcg within 1e-8:
    # replay a handful of requests through both paths.
    rng = np.random.default_rng(SEED)
    checked = 0
    for i in range(6):
        a = mats[i % len(mats)]
        b = rng.standard_normal(a.n_rows)
        single = FleetScheduler(n_devices=4, preconditioner="jacobi",
                                cache=ArtifactCache())
        fid = single.submit(a, b, arrival_s=0.0)
        single.run()
        got = single.outcome(fid).result
        ref = pcg(a, b, make_preconditioner(a, "jacobi"))
        assert got.converged and ref.converged
        err = float(np.max(np.abs(got.x - ref.x)))
        assert err < 1e-8, err
        checked += 1
    summary["fleet_vs_pcg_checked"] = checked

    # Communication pricing across fleet widths.
    a = mats[0]
    m = make_preconditioner(a, "jacobi")
    cost_rows = []
    for n_dev in DEVICES:
        entry = {}
        base = comm_iteration_cost(A100, NVLINK, n_dev, a, m,
                                   variant="pcg")
        for variant, s in (("pcg", 1), ("pipelined", 1), ("s_step", 2),
                           ("s_step", 4)):
            c = comm_iteration_cost(A100, NVLINK, n_dev, a, m,
                                    variant=variant, s=s)
            label = variant if variant != "s_step" else f"s_step(s={s})"
            entry[label] = {"exposed_s": c.exposed,
                            "allreduce_s": c.allreduce,
                            "total_s": c.total}
            if n_dev > 1 and variant != "pcg":
                # Strictly fewer allreduce-sync seconds per iteration
                # than standard pcg at nonzero link latency.
                assert c.exposed < base.exposed, (variant, s, n_dev)
            cost_rows.append([f"{n_dev}", label, f"{c.exposed:.3e}",
                              f"{c.allreduce:.3e}", f"{c.total:.3e}"])
        summary["comm_cost"][f"N={n_dev}"] = entry

    benchmark(lambda: _run(mats, n_requests, 4, max(RATES)))

    table = render_table(
        ["rate", "N", "thrpt", "p50 (ms)", "p99 (ms)", "occ",
         "routes/dev"],
        rows, title="Fleet — devices × rps capacity sweep "
                    "(open-loop Poisson, modeled clock)")
    emit("fleet_capacity.txt", table)
    cost_table = render_table(
        ["N", "variant", "exposed (s)", "allreduce (s)", "total (s)"],
        cost_rows, title="Per-iteration allreduce cost on the modeled "
                         "critical path (nvlink)")
    emit("fleet_comm_cost.txt", cost_table)
    (RESULTS_DIR / "BENCH_fleet.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8")
