"""Performance layer: cache amortization and vectorized-sweep speedup.

Not a paper figure — this bench quantifies the two wall-clock claims of
``repro.perf`` on real registry matrices: (a) the vectorized ILU(0)
numeric sweep vs the scalar IKJ oracle, and (b) the cost of a cached
preconditioner hit vs the initial build during a grid-search over drop
ratios (one factorization per distinct Â, the rest are lookups).
"""

import time

from conftest import emit, scaled_matrix

from repro.core import make_preconditioner, sparsify_magnitude
from repro.datasets import load
from repro.harness import render_table
from repro.perf import (ArtifactCache, build_factor_plan,
                        ilu_numeric_vectorized, use_cache)
from repro.precond.ilu0 import ilu_numeric_inplace

MATRICES = (scaled_matrix("thermal_1600_s102"),
            scaled_matrix("structural_2500_s104"),
            scaled_matrix("graphics_3025_s105"))
RATIOS = (1.0, 5.0, 10.0)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_perf_report(benchmark):
    rows = []
    for name in dict.fromkeys(MATRICES):
        a = load(name)
        plan = build_factor_plan(a)
        t_scalar = _best_of(lambda: ilu_numeric_inplace(a))
        t_vec = _best_of(lambda: ilu_numeric_vectorized(a, plan=plan))

        with use_cache(ArtifactCache()) as cache:
            hats = [sparsify_magnitude(a, t).a_hat for t in RATIOS]
            t_grid_cold = _best_of(
                lambda: [make_preconditioner(h, "ilu0") for h in hats],
                repeats=1)
            t_grid_warm = _best_of(
                lambda: [make_preconditioner(h, "ilu0") for h in hats])
            stats = cache.stats
        rows.append([name, f"{1e3 * t_scalar:.2f}", f"{1e3 * t_vec:.2f}",
                     f"{t_scalar / t_vec:.2f}×",
                     f"{1e3 * t_grid_cold:.2f}", f"{1e3 * t_grid_warm:.3f}",
                     f"{stats.misses_by_kind['preconditioner']}"])
        assert stats.misses_by_kind["preconditioner"] == len(RATIOS)

    benchmark(lambda: ilu_numeric_vectorized(
        load(MATRICES[0]), plan=build_factor_plan(load(MATRICES[0]))))
    table = render_table(
        ["matrix", "scalar ILU0 (ms)", "vectorized (ms)", "speedup",
         "grid cold (ms)", "grid warm (ms)", "factorizations"],
        rows, title="Perf layer — vectorized sweep vs scalar oracle and "
                    "cached grid-search (3 ratios, warm pass is lookups "
                    "only)")
    emit("perf_layer.txt", table)
