"""Preconditioner crossover: sparsified-ILU vs the approximate-inverse
family, by matrix category and device sync cost.

The ROADMAP's open item 1 made concrete: SPAI/FSAI apply as one or two
barrier-free SpMVs, so their modeled per-iteration cost is flat in the
device's sync latency, while (sparsified) ILU pays its wavefront
structure on every application.  The study must record a genuine
crossover — at least one ``(category, sync-cost)`` point where the
approximate-inverse family wins on modeled end-to-end seconds and one
where sparsified-ILU does — and every approximate-inverse candidate
must report exactly zero modeled sync barriers.  The machine-readable
map lands in ``results/BENCH_spai.json``.
"""

import json

import numpy as np

from conftest import RESULTS_DIR, _scale, emit

from repro.core.spcg import make_preconditioner
from repro.harness import run_spai_crossover

AINV = ("spai", "fsai")


def _params():
    if _scale() == "tiny":
        return 220, ("thermal", "cfd")
    return 900, ("model_reduction", "thermal", "cfd", "structural")


def test_spai_crossover(benchmark):
    n, categories = _params()
    res = run_spai_crossover(n=n, categories=categories)

    # Every approximate-inverse candidate: zero modeled sync barriers
    # and a converged probe at the study's 1e-8 criterion.
    for p in res.points:
        for kind in AINV:
            c = p.plan.candidate(kind)
            assert c.apply_sync_barriers == 0, (p.category, kind)
            assert c.converged, (p.category, kind)

    # The headline claim: neither family dominates the map.
    assert res.ainv_win_points, "approximate-inverse never won a point"
    assert res.ilu_win_points, "sparsified-ILU never won a point"

    # The structure of the crossover: at the sync-free limit the
    # stronger preconditioner (fewer iterations) must win, at the real
    # device's sync cost the barrier-free family must win somewhere.
    free = [p for p in res.points if p.sync_scale == 0.0]
    real = [p for p in res.points if p.sync_scale >= 1.0]
    assert any(not p.ainv_wins for p in free)
    assert any(p.ainv_wins for p in real)

    emit("spai_crossover.txt", res.summary())

    summary = {
        "device": res.device,
        "candidates": list(res.candidates),
        "has_crossover": res.has_crossover,
        "ainv_wins": len(res.ainv_win_points),
        "ilu_wins": len(res.ilu_win_points),
        "points": [{
            "category": p.category, "n": p.n, "nnz": p.nnz,
            "sync_scale": p.sync_scale, "winner": p.winner,
            "candidates": {c.kind: {
                "converged": c.converged,
                "iterations": c.iterations,
                "setup_seconds": c.setup_seconds,
                "per_iteration_seconds": c.per_iteration_seconds,
                "apply_sync_barriers": c.apply_sync_barriers,
                "total_seconds": c.total_seconds,
            } for c in p.plan.candidates},
        } for p in res.points],
    }
    (RESULTS_DIR / "BENCH_spai.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8")

    # Wall-clock the barrier-free apply itself.
    from repro.datasets.generators import generate

    a = generate(categories[0], n, 100)
    m = make_preconditioner(a, "spai", cache=False)
    r = np.ones(a.n_rows)
    benchmark(lambda: m.apply(r))
