"""Section 5.4 — condition number vs convergence case studies.

The paper examines three matrices whose convergence responds differently
to sparsification:

* *ecology2*: baseline fails, 5 %/10 % converge (condition 30 → 10);
* *thermal1*: iterations fall monotonically with the ratio;
* *Pres_Poisson*: improves up to 5 %, collapses at 10 % (over-
  sparsification removes structurally critical entries).

SuiteSparse originals are unavailable offline, so each pattern is
reproduced on an engineered stand-in exercising the same mechanism; the
*Pres_Poisson* pattern (monotone damage past a sweet spot) appears
naturally, while the dramatic ecology2 repair requires an ILU breakdown
our diagonally-dominant generators cannot produce — the bench documents
how far each pattern reproduces.

The wall-clock benchmark times the exact condition number the study is
built on.
"""

import numpy as np
import pytest
from conftest import emit

from repro.core import exact_condition_number, sparsify_magnitude
from repro.core.spcg import make_preconditioner
from repro.datasets.generators import _grid_edges_2d, _spd_from_edges
from repro.harness import render_table
from repro.solvers import StoppingCriterion, pcg
from repro.sparse import CSRMatrix


def thermal1_like(side=30, seed=3) -> CSRMatrix:
    """Gradual improvement: several weak fronts unlock one at a time."""
    rng = np.random.default_rng(seed)
    i, j, _ = _grid_edges_2d(side, side)
    w = rng.lognormal(0.0, 1.0, size=i.shape[0])
    s = np.arange(side * side) // side + np.arange(side * side) % side
    smax = 2 * (side - 1)
    for frac, weak in ((0.3, 1e-5), (0.55, 3e-5), (0.8, 1e-4)):
        crossing = (s[i] < frac * smax) != (s[j] < frac * smax)
        w = np.where(crossing, weak * w, w)
    return _spd_from_edges(i, j, w, side * side, dominance=1e-3)


def pres_poisson_like(side=30, seed=5) -> CSRMatrix:
    """Sweet-spot behaviour: a mid-magnitude tier is load-bearing."""
    rng = np.random.default_rng(seed)
    i, j, _ = _grid_edges_2d(side, side)
    w = np.abs(1.0 + 0.05 * rng.standard_normal(i.shape[0])) + 1e-6
    # ~6% of couplings are weak noise (safe to drop)...
    noise = rng.random(i.shape[0]) < 0.06
    w = np.where(noise, 1e-4 * w, w)
    # ...but the next tier up carries real structure.
    mid = (~noise) & (rng.random(i.shape[0]) < 0.08)
    w = np.where(mid, 0.25 * w, w)
    return _spd_from_edges(i, j, w, side * side, dominance=5e-3)


def _study(a: CSRMatrix, label: str) -> list[list[str]]:
    crit = StoppingCriterion.paper_default()
    b = a.matvec(np.ones(a.n_rows))
    rows = []
    for t in (0.0, 1.0, 5.0, 10.0):
        a_hat = sparsify_magnitude(a, t).a_hat if t else a
        kappa = exact_condition_number(a_hat)
        try:
            m = make_preconditioner(a_hat, "ilu0")
            res = pcg(a, b, m, criterion=crit)
            iters = str(res.n_iters) if res.converged else "fail"
        except Exception:
            iters = "breakdown"
        rows.append([label if t == 0.0 else "", f"{t:g}%",
                     f"{kappa:.4g}", iters])
    return rows


def test_condition_study_report(benchmark):
    rows = []
    rows += _study(thermal1_like(), "thermal1-like")
    rows += _study(pres_poisson_like(), "Pres_Poisson-like")
    text = render_table(
        ["case", "ratio", "condition number κ(Â)", "PCG-ILU(0) iterations"],
        rows,
        title="§5.4 — condition number and convergence vs sparsification "
              "ratio")
    text += ("\npaper patterns: thermal1 iterations fall with the ratio "
             "(1000+ → 531 → 127 → 71); Pres_Poisson improves to 5% then "
             "fails at 10%; ecology2's fail→2-iteration repair needs an "
             "ILU(0) breakdown that diagonally dominant synthetic "
             "matrices cannot exhibit (see EXPERIMENTS.md).")
    emit("condition_study.txt", text)
    benchmark.pedantic(lambda: _study(thermal1_like(), "t"), rounds=1,
                       iterations=1)

    # thermal1-like: the paper's causal quantity — the condition number —
    # must fall monotonically with the ratio.  (On the synthetic stand-in
    # ILU(0) absorbs the conditioning gain, so iterations stay ~flat
    # rather than falling; see EXPERIMENTS.md.)
    kappas = [float(r[2]) for r in rows[0:4]]
    assert all(k2 <= k1 * 1.001 for k1, k2 in zip(kappas, kappas[1:]))
    # Pres_Poisson-like: 10% must not be better than the 5% sweet spot.
    pp = [int(r[3]) for r in rows[4:8] if r[3].isdigit()]
    if len(pp) == 4:
        assert pp[3] >= pp[2]


def test_condition_bench_exact_kappa(benchmark):
    a = thermal1_like(side=24)
    benchmark(exact_condition_number, a)
