"""Table 2 + Figures 8a–8c: cross-architecture portability.

Table 2 — per-iteration gmean speedup and % accelerated for
SPCG-ILU(0)/ILU(K) on the A100 and V100 models (paper: 1.23/1.22 and
1.65/1.71 — both GPUs benefit consistently).
Figures 8a/8b — V100 speedup histograms; 8c — the EPYC CPU histogram
(paper: gmean 1.24×, 91.59 % of matrices benefiting).

The wall-clock benchmark times one preconditioner application as the
device-independent kernel behind all three columns.
"""

import numpy as np
from conftest import emit, scaled_matrix

from repro.datasets import load
from repro.harness import render_histogram, render_table
from repro.precond import ILU0Preconditioner
from repro.util import gmean


def _stats(suite):
    v = suite.per_iteration_speedups()
    return gmean(v), 100.0 * float(np.mean(v > 1.0))


def test_table2_report(ilu0_suite, iluk_suite, ilu0_v100_suite,
                       iluk_v100_suite, benchmark):
    benchmark(ilu0_v100_suite.per_iteration_speedups)
    g0a, p0a = _stats(ilu0_suite)
    gka, pka = _stats(iluk_suite)
    g0v, p0v = _stats(ilu0_v100_suite)
    gkv, pkv = _stats(iluk_v100_suite)
    text = render_table(
        ["Statistic/Setting", "ILU(0) A100", "ILU(0) V100",
         "ILU(K) A100", "ILU(K) V100"],
        [["Geometric Mean", f"{g0a:.2f}×", f"{g0v:.2f}×",
          f"{gka:.2f}×", f"{gkv:.2f}×"],
         ["% Accelerated", f"{p0a:.1f}%", f"{p0v:.1f}%",
          f"{pka:.1f}%", f"{pkv:.1f}%"],
         ["paper gmean", "1.23×", "1.22×", "1.65×", "1.71×"],
         ["paper % acc.", "69.16%", "83.18%", "80.38%", "82.25%"]],
        title="Table 2 — per-iteration speedup on A100 and V100")
    note = ("\nNote: with CI-sized matrices every wavefront kernel sits on "
            "the latency floor, so the two GPU models translate the same "
            "schedule into nearly identical speedups; the paper's "
            "second-decimal A100/V100 asymmetries require memory-roof-"
            "sized workloads (see EXPERIMENTS.md).")
    emit("table2_portability.txt", text + note)

    # Cross-architecture consistency: both GPUs benefit.
    assert g0a > 1.0 and g0v > 1.0
    assert gka > 1.0 and gkv > 1.0


def test_fig08_histograms(ilu0_v100_suite, iluk_v100_suite,
                          ilu0_cpu_suite, benchmark):
    benchmark(ilu0_cpu_suite.per_iteration_speedups)
    h_a = render_histogram(
        ilu0_v100_suite.per_iteration_speedups(),
        title="Figure 8a — SPCG-ILU(0) per-iteration speedups on V100")
    h_b = render_histogram(
        iluk_v100_suite.per_iteration_speedups(),
        title="Figure 8b — SPCG-ILU(K) per-iteration speedups on V100")
    cpu = ilu0_cpu_suite.per_iteration_speedups()
    h_c = render_histogram(
        cpu, title="Figure 8c — SPCG-ILU(0) per-iteration speedups on "
                   "EPYC 7413 (paper: gmean 1.24×, 91.59% benefiting)")
    g_cpu = gmean(cpu)
    h_c += (f"\nCPU gmean {g_cpu:.2f}× "
            f"({100 * float(np.mean(cpu >= 1.0)):.1f}% not slowed down)")
    emit("fig08_portability_histograms.txt",
         h_a + "\n\n" + h_b + "\n\n" + h_c)

    assert g_cpu > 1.0  # the CPU benefits from wavefront reduction too


def test_table2_bench_apply(benchmark):
    a = load(scaled_matrix("structural_1156_s101"))
    m = ILU0Preconditioner(a)
    benchmark(m.apply, np.ones(a.n_rows))
