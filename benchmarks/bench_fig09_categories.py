"""Figure 9: SPCG-ILU(0) end-to-end speedup per application category.

The paper reports geometric-mean end-to-end speedups across 17
application categories, with 16 of 17 showing improvement (the
counter-example category is the engineered exception in our registry).

The wall-clock benchmark times a full SPCG solve on one category
representative.
"""

import numpy as np
from conftest import emit

from repro import spcg
from repro.datasets import CATEGORIES, load
from repro.harness import render_bar_chart
from repro.util import gmean


def test_fig09_report(ilu0_suite, benchmark):
    by_cat = benchmark(ilu0_suite.by_category)
    labels, values = [], []
    n_improved = 0
    for cat in CATEGORIES:
        rs = by_cat.get(cat.key, [])
        sp = np.array([r.end_to_end_speedup for r in rs])
        sp = sp[np.isfinite(sp)]
        labels.append(cat.label)
        if sp.size:
            g = gmean(sp)
            values.append(g)
            n_improved += g > 1.0
        else:
            values.append(float("nan"))
    text = render_bar_chart(
        labels, values,
        title="Figure 9 — gmean end-to-end SPCG-ILU(0) speedup per "
              "application category (A100 model; paper: 16 of 17 "
              "categories improve)")
    text += f"\ncategories with gmean speedup > 1: {n_improved} of 17"
    emit("fig09_categories.txt", text)

    # Majority of categories must improve (the paper's 16/17 claim,
    # with slack for the engineered counter-example and borderline ones).
    assert n_improved >= 10


def test_fig09_bench_spcg_solve(benchmark):
    a = load("economic_900_s100")
    b = a.matvec(np.ones(a.n_rows))
    benchmark(spcg, a, b)
