"""Amortized solve streams: the warm+reuse+recycling session vs cold
per-step solves, HPCG-style.

The ROADMAP's open item 3 made concrete: on a drifting heat-equation
stream the full :class:`repro.streams.SolveSession` (warm starts,
staleness-gated factor reuse, Krylov recycling) must reduce **modeled
end-to-end seconds** vs dispatching every step through the cold
one-shot path by at least 1.5×, with HPCG discipline — every step's
final *true* residual ``b − A·x`` re-verified against its stopping
criterion on both streams, and the recycling contract (deflated solves
match plain ``pcg`` to 1e-8 and never iterate more on
identical-matrix streams) checked alongside.  The machine-readable
headline lands in ``results/BENCH_stream.json``.
"""

import json

import numpy as np

from conftest import RESULTS_DIR, _scale, emit

from repro.harness import run_stream_study

#: The acceptance floor for the amortization headline.
MIN_SPEEDUP = 1.5


def _params():
    if _scale() == "tiny":
        return dict(side=12, n_steps=20, dt=20.0)
    return dict(side=20, n_steps=24, dt=20.0)


def test_stream_amortization(benchmark):
    res = run_stream_study(**_params())

    # HPCG discipline: a run with an unverified step has no headline.
    assert res.all_verified, "a step's true residual missed its criterion"
    for rep in (res.warm, res.cold):
        assert rep.all_converged
        for s in rep.steps:
            assert s.true_residual <= s.tolerance, (s.step, s.tag)

    # The headline: the session amortizes ≥ 1.5× on modeled seconds,
    # and wins on raw iterations too (the CI smoke's strict check).
    assert res.speedup >= MIN_SPEEDUP, (
        f"session speedup ×{res.speedup:.2f} below ×{MIN_SPEEDUP}")
    assert res.warm_iterations < res.cold_iterations

    # The warm stream actually exercised every amortization lever.
    acts = res.warm.actions
    assert acts.get("reuse", 0) > 0, "staleness detector never reused"
    assert acts.get("refactor", 0) > 0, "drift shock never refactored"
    assert any(s.warm_started for s in res.warm.steps)
    assert any(s.deflated > 0 for s in res.warm.steps)

    # Recycling contract on the identical-matrix check stream.
    assert res.deflation_mismatch <= 1e-8
    assert res.deflation_iter_excess <= 0

    emit("stream_amortization.txt", res.summary())

    summary = {
        "n": res.n, "nnz": res.nnz, "n_steps": res.n_steps,
        "dt": res.dt, "device": res.device,
        "min_speedup": MIN_SPEEDUP,
        "speedup": res.speedup,
        "warm_seconds": res.warm_seconds,
        "cold_seconds": res.cold_seconds,
        "warm_iterations": res.warm_iterations,
        "cold_iterations": res.cold_iterations,
        "warm_actions": dict(res.warm.actions),
        "all_verified": res.all_verified,
        "deflation_mismatch": res.deflation_mismatch,
        "deflation_iter_excess": res.deflation_iter_excess,
        "steps": [{
            "step": s.step, "action": s.action, "drift": s.drift,
            "iters": s.total_iters, "warm_started": s.warm_started,
            "deflated": s.deflated, "verified": s.verified,
            "modeled_seconds": s.modeled_seconds,
        } for s in res.warm.steps],
    }
    (RESULTS_DIR / "BENCH_stream.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8")

    # Wall-clock one warm session step (staleness probe + deflated
    # solve) as the representative real kernel.
    from repro.harness import build_heat_stream_operator
    from repro.solvers.stopping import StoppingCriterion
    from repro.streams import SolveSession

    p = _params()
    a = build_heat_stream_operator(p["side"], p["dt"])
    crit = StoppingCriterion(rtol=1e-10, atol=0.0, max_iters=1000)
    session = SolveSession(preconditioner="ilu0", criterion=crit)
    b = np.ones(a.n_rows)
    session.step(a, b)
    benchmark(lambda: session.step(a, b))
