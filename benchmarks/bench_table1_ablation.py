"""Table 1: per-iteration speedup of SPCG over PCG — ratio ablation.

1a (ILU(0)) and 1b (ILU(K)): for each fixed ratio {1, 5, 10} %, for the
wavefront-aware selection (SPCG) and for the oracle, the geometric-mean
per-iteration speedup and the percentage of matrices accelerated.

Paper values:
    1a: 0.98 / 1.11 / 1.22 / 1.23 (SPCG) / 1.39 (oracle);
        accelerated 56.14 / 71.93 / 68.42 / 69.16 / 78.07 %.
    1b: 1.47 / 1.62 / 1.65 / 1.65 / 1.78;
        accelerated 88.57 / 92.86 / 85.71 / 80.38 / 97.14 %.

The wall-clock benchmark times the oracle selector on one matrix.
"""

import numpy as np
from conftest import emit

from repro.core import oracle_select
from repro.datasets import load
from repro.harness import render_table
from repro.machine import A100
from repro.precond import ILU0Preconditioner
from repro.util import gmean


def _table(suite, paper_row_gmean, paper_row_acc, title, fname):
    tab = suite.ratio_table()
    agg = suite.aggregates()
    oracle = np.array([r.oracle_per_iteration_speedup
                       for r in suite.results])
    oracle = oracle[np.isfinite(oracle)]
    spcg = suite.per_iteration_speedups()
    gm_row = ["Geometric Mean"]
    acc_row = ["% Accelerated"]
    for t in (1.0, 5.0, 10.0):
        gm_row.append(f"{tab['gmean'][t]:.2f}×")
        acc_row.append(f"{tab['percent_accelerated'][t]:.1f}%")
    gm_row += [f"{gmean(spcg):.2f}×", f"{gmean(oracle):.2f}×"]
    acc_row += [f"{agg.percent_accelerated:.1f}%",
                f"{100 * float(np.mean(oracle > 1.0)):.1f}%"]
    text = render_table(
        ["Statistic/Setting", "1%", "5%", "10%", "SPCG", "Oracle"],
        [gm_row, acc_row,
         ["paper gmean"] + paper_row_gmean,
         ["paper % acc."] + paper_row_acc],
        title=title)
    text += (f"\nSPCG matches the oracle ratio on "
             f"{agg.percent_oracle_match:.1f}% of matrices "
             f"(paper: 56.14%).")
    emit(fname, text)
    return tab, agg


def test_table1a_ilu0(ilu0_suite, benchmark):
    benchmark(ilu0_suite.ratio_table)
    tab, agg = _table(
        ilu0_suite,
        ["0.98×", "1.11×", "1.22×", "1.23×", "1.39×"],
        ["56.14%", "71.93%", "68.42%", "69.16%", "78.07%"],
        "Table 1a — per-iteration speedup statistics of SPCG-ILU(0), A100",
        "table1a_ilu0.txt")
    # Shape assertions: monotone-ish in ratio; oracle bounds SPCG.
    assert tab["gmean"][10.0] >= tab["gmean"][1.0]
    assert agg.gmean_oracle_speedup >= agg.gmean_per_iteration_speedup - 1e-9


def test_table1b_iluk(iluk_suite, benchmark):
    benchmark(iluk_suite.ratio_table)
    tab, agg = _table(
        iluk_suite,
        ["1.47×", "1.62×", "1.65×", "1.65×", "1.78×"],
        ["88.57%", "92.86%", "85.71%", "80.38%", "97.14%"],
        "Table 1b — per-iteration speedup statistics of SPCG-ILU(K), A100",
        "table1b_iluk.txt")
    assert agg.gmean_oracle_speedup >= agg.gmean_per_iteration_speedup - 1e-9


def test_table1_bench_oracle_select(benchmark):
    a = load("thermal_900_s100")
    benchmark(oracle_select, a, A100,
              lambda m: ILU0Preconditioner(m, raise_on_zero_pivot=False))
