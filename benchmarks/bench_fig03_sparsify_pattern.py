"""Figure 3: sparsification pattern on a Dubcova1-like FEM matrix.

The paper's example: Dubcova1 (134,569 nnz) sparsified at 10 % drops
10.00 % of nonzeros and 14.73 % of wavefronts.  We reproduce the same
two statistics on the registry's closest structural stand-in, and
benchmark the sparsifier kernel itself.
"""

from conftest import emit, scaled_matrix

from repro.core import sparsify_magnitude
from repro.datasets import load
from repro.graph import wavefront_count
from repro.harness import render_table

MATRIX = scaled_matrix("structural_2500_s104")


def test_fig03_sparsification_pattern(benchmark):
    a = load(MATRIX)
    w0 = wavefront_count(a)

    res = benchmark(sparsify_magnitude, a, 10.0)

    w_hat = wavefront_count(res.a_hat)
    rows = [[
        MATRIX, a.nnz, f"{res.achieved_percent:.2f}%",
        w0, w_hat, f"{100 * (w0 - w_hat) / w0:.2f}%",
    ]]
    text = render_table(
        ["matrix", "nnz", "nnz dropped", "wavefronts", "wavefronts (Â)",
         "wavefront drop"],
        rows,
        title="Figure 3 — sparsification pattern at t = 10% "
              "(paper: Dubcova1 drops 10.00% nnz, 14.73% wavefronts)")
    emit("fig03_sparsify_pattern.txt", text)

    assert 9.0 <= res.achieved_percent <= 10.0
    assert w_hat <= w0
