"""Triangular-solve engine v2: level-scheduled vs partitioned SpTRSV,
plus the mixed-precision iteration/traffic trade.

Not a paper figure — the engine-selection trajectory for the ROADMAP's
triangular-path item.  On the band-1 chain (the wavefront-deep worst
case for level scheduling) the partitioned engine must be modeled
strictly faster for every candidate partition count, and ``auto`` must
select it; on the shallow 2-D Poisson factor ``auto`` must keep level
scheduling.  A second table runs the precision study: mixed
(float32-factor) SPCG must reach the float64 stopping criterion within
1.3x the outer iterations while moving strictly fewer value bytes per
iteration.  The machine-readable summary lands in
``results/BENCH_trisolve.json``.
"""

import json

from conftest import RESULTS_DIR, _scale, emit

from repro.harness import render_table, run_precision_study
from repro.machine import A100
from repro.precond import plan_trisolve
from repro.precond.ilu0 import ilu0
from repro.sparse import stencil_poisson_1d, stencil_poisson_2d

PARTS = (2, 4, 8, 16)


def _sizes():
    if _scale() == "tiny":
        return 256, 12
    return 512, 20


def test_trisolve_engine_selection(benchmark):
    chain_n, side = _sizes()
    chain = ilu0(stencil_poisson_1d(chain_n)).lower
    shallow = ilu0(stencil_poisson_2d(side)).lower
    cases = [("chain", chain), ("poisson2d", shallow)]

    summary = {"device": A100.name, "cases": {}}
    rows = []
    for name, tri in cases:
        entry = {"n": tri.n_rows, "nnz": tri.nnz, "plans": {}}
        for p in PARTS:
            if p > tri.n_rows:
                continue
            plan = plan_trisolve(tri, engine="partitioned", n_parts=p,
                                 device=A100)
            entry["plans"][f"P={p}"] = {
                "levels_s": plan.levels_seconds,
                "partitioned_s": plan.partitioned_seconds,
                "speedup": plan.speedup,
            }
            rows.append([name, f"{p}", f"{plan.levels_seconds:.3e}",
                         f"{plan.partitioned_seconds:.3e}",
                         f"{plan.speedup:.2f}x"])
            if name == "chain":
                # The wavefront-deep case: partitioned must win at
                # every candidate width, not just the auto pick.
                assert plan.partitioned_seconds < plan.levels_seconds
        auto = plan_trisolve(tri, engine="auto", device=A100)
        entry["auto"] = {"engine": auto.engine, "n_parts": auto.n_parts,
                         "modeled_s": min(auto.levels_seconds,
                                          auto.partitioned_seconds)}
        summary["cases"][name] = entry
        rows.append([name, "auto", f"{auto.levels_seconds:.3e}",
                     f"{auto.partitioned_seconds:.3e}",
                     f"-> {auto.engine} (P={auto.n_parts})"])

    assert summary["cases"]["chain"]["auto"]["engine"] == "partitioned"

    from repro.precond import PartitionedTriangularSolver
    import numpy as np

    solver = PartitionedTriangularSolver(
        chain, unit_diagonal=True,
        n_parts=summary["cases"]["chain"]["auto"]["n_parts"])
    b = np.ones(chain.n_rows)
    benchmark(lambda: solver.solve(b))

    table = render_table(
        ["matrix", "P", "levels (s)", "partitioned (s)", "speedup"],
        rows, title="SpTRSV engines on the A100 model "
                    "(modeled per-solve seconds)")
    emit("trisolve_engines.txt", table)

    study = run_precision_study(
        stencil_poisson_2d(side), name=f"poisson2d-{side}")
    assert study.full.converged and study.mixed.converged
    assert study.iteration_ratio <= 1.3
    assert study.traffic_ratio < 1.0
    summary["precision_study"] = {
        "matrix": study.matrix,
        "full_iters": study.full.iterations,
        "mixed_iters": study.mixed.iterations,
        "iteration_ratio": study.iteration_ratio,
        "full_value_bytes": study.full.value_traffic_bytes,
        "mixed_value_bytes": study.mixed.value_traffic_bytes,
        "traffic_ratio": study.traffic_ratio,
        "mixed_fallback": study.mixed.mixed_fallback,
    }
    emit("precision_study.txt", study.summary())

    (RESULTS_DIR / "BENCH_trisolve.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8")
