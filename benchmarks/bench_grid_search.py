"""Threshold grid search — reproducing the paper's (τ = 1, ω = 10 %).

Section 4.1 states the thresholds were "selected based on a grid search
over a swept range"; §3.2.3 reports the winning configuration achieves a
gmean speedup of 1.233 with a 52.34 % convergence rate.  This bench runs
the sweep over a stratified registry subset and prints the score per
grid point, asserting the paper's pick lies on the speedup frontier.

The wall-clock benchmark times one grid point's selection pass.
"""

from conftest import emit, study_names

from repro.harness import grid_search_thresholds, render_table

NAMES = study_names(max_n=900)

TAUS = (0.25, 0.5, 1.0, 2.0)
OMEGAS = (5.0, 10.0, 20.0)


def test_grid_search(benchmark):
    res = grid_search_thresholds(NAMES, taus=TAUS, omegas=OMEGAS)
    text = render_table(
        ["τ", "ω", "gmean per-iter speedup", "SPCG convergence rate"],
        res.table_rows(),
        title="τ/ω grid search over 17 category representatives "
              "(paper: τ=1, ω=10% wins with 1.233× / 52.34%)")
    best = res.best
    text += (f"\nbest grid point: τ={best.tau:g}, ω={best.omega:g}% "
             f"({best.gmean_speedup:.3f}×, "
             f"{100 * best.convergence_rate:.1f}% converging)")
    emit("grid_search.txt", text)

    paper_pick = next(p for p in res.points
                      if p.tau == 1.0 and p.omega == 10.0)
    # The paper's configuration must sit near the frontier: within 10% of
    # the best gmean speedup in the sweep.
    assert paper_pick.gmean_speedup >= 0.9 * best.gmean_speedup

    benchmark.pedantic(
        lambda: grid_search_thresholds(NAMES[:3], taus=(1.0,),
                                       omegas=(10.0,)),
        rounds=1, iterations=1)
