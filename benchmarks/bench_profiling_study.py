"""Section 5.3 — modeled GPU profiling observations.

The paper profiles three representative matrices with Nsight Compute:

* *thermomech_dM* (speedup 4.39×): DRAM utilization **rises** (4.24 % →
  6.25 %) and compute utilization rises (16.49 % → 23.71 %) — less time
  stuck at barriers, more time doing work;
* *Muu* (0.99×): DRAM utilization falls, nothing gained;
* *2cubes_sphere*: compute utilization flat — latency-bound either way.

We reproduce the *mechanism* with the modeled profiler: utilization =
work / (time · peak); matrices whose runtime is barrier-dominated show
rising utilization exactly when they speed up.

The wall-clock benchmark times the profiler itself.
"""

import numpy as np
from conftest import emit, scaled_matrix

from repro.core import wavefront_aware_sparsify
from repro.datasets import load
from repro.harness import render_table
from repro.machine import A100, KernelProfiler
from repro.precond import ILU0Preconditioner

CASES = {
    # strong speedup expected (front-rich structural matrix)
    "thermomech_dM-like": scaled_matrix("structural_2500_s104"),
    # negligible speedup expected (uniform counter-example)
    "Muu-like": "counter_1156_s101",
    # latency-bound random graph
    "2cubes_sphere-like": "random2d3d_1156_s101",
}


def test_profiling_report(benchmark):
    prof = KernelProfiler(A100)
    rows = []
    utils = {}
    for label, name in CASES.items():
        a = load(name)
        d = wavefront_aware_sparsify(a)
        m0 = ILU0Preconditioner(a)
        m1 = ILU0Preconditioner(d.a_hat, raise_on_zero_pivot=False)
        u0 = prof.iteration_utilization(a, m0)
        u1 = prof.iteration_utilization(a, m1)
        speedup = u0.seconds / u1.seconds
        utils[label] = (u0, u1, speedup)
        rows.append([label, f"×{speedup:.2f}",
                     f"{u0.dram_util_percent:.3f}% → "
                     f"{u1.dram_util_percent:.3f}%",
                     f"{u0.compute_util_percent:.3f}% → "
                     f"{u1.compute_util_percent:.3f}%",
                     f"{u0.bound} → {u1.bound}"])
    text = render_table(
        ["case", "per-iter speedup", "DRAM util", "compute util",
         "bound"],
        rows,
        title="§5.3 — modeled Nsight-style profile, PCG iteration before "
              "→ after sparsification (A100)")
    text += ("\npaper: thermomech_dM 4.39× with DRAM 4.24→6.25% and "
             "compute 16.49→23.71%; Muu 0.99× with DRAM falling; "
             "2cubes_sphere compute flat at 1.07%.")
    emit("profiling_study.txt", text)
    a0 = load(CASES["thermomech_dM-like"])
    benchmark(prof.iteration_utilization, a0, ILU0Preconditioner(a0))

    u0, u1, speedup = utils["thermomech_dM-like"]
    if speedup > 1.05:
        # Speedup must come with *rising* utilization: same work in less
        # time (the thermomech_dM signature).
        assert u1.dram_util_percent >= u0.dram_util_percent * 0.9
    _, _, s_muu = utils["Muu-like"]
    assert s_muu < 1.2  # the no-gain case stays near 1


def test_profiling_bench(benchmark):
    a = load(CASES["thermomech_dM-like"])
    m = ILU0Preconditioner(a)
    prof = KernelProfiler(A100)
    benchmark(prof.iteration_utilization, a, m)
