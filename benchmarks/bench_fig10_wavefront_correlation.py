"""Figures 10a/10b: wavefront reduction vs per-iteration speedup.

The paper's Spearman correlations: 0.61 for ILU(0) (strong — wavefront
count directly controls the solve), 0.22 for ILU(K) (weaker — fill-in
mediates the effect).  We compute the same coefficient over the suite.

The wall-clock benchmark times the vectorized level scheduler, the
inspector whose output both axes derive from.
"""

from conftest import emit, scaled_matrix

from repro.datasets import load
from repro.graph import level_schedule
from repro.harness import render_scatter
from repro.sparse.ops import extract_lower
from repro.util import spearman


def _report(suite, label, paper_rho):
    x, y = suite.wavefront_correlation_points()
    rho = spearman(x, y) if x.size >= 2 else float("nan")
    text = render_scatter(
        x, y,
        title=f"Figure 10 — wavefront reduction ratio vs per-iteration "
              f"speedup, {label}",
        xlabel="per-iteration speedup", ylabel="wavefront reduction")
    text += (f"\nSpearman correlation: {rho:.3f} "
             f"(paper: {paper_rho})")
    return text, rho


def test_fig10a_ilu0(ilu0_suite, benchmark):
    benchmark(ilu0_suite.wavefront_correlation_points)
    text, rho = _report(ilu0_suite, "SPCG-ILU(0)", "0.61")
    emit("fig10a_correlation_ilu0.txt", text)
    assert rho > 0.3  # positive, moderately strong


def test_fig10b_iluk(iluk_suite, benchmark):
    benchmark(iluk_suite.wavefront_correlation_points)
    text, rho = _report(iluk_suite, "SPCG-ILU(K)", "0.22")
    emit("fig10b_correlation_iluk.txt", text)
    assert rho > 0.0  # positive but (per the paper) possibly weaker


def test_fig10_bench_level_schedule(benchmark):
    low = extract_lower(load(scaled_matrix("statmath_1600_s102")))
    benchmark(level_schedule, low)
