"""Self-healing serving under device fault injection.

Not a paper figure — this bench tracks the fault-tolerance trajectory.
One fixed request stream is served against seeded fault schedules at
per-sweep fault rates {0%, 2%, 5%, 10%}, twice per rate: with the full
self-healing stack (ABFT + true-residual detection, checkpointed
retries, circuit breaker) and with retries disabled.  Goodput is
*audited* — a completion only counts if its returned iterate's true
residual passes, so silently wrong answers can never inflate the
healing side.  The machine-readable summary lands in
``results/BENCH_chaos.json`` so CI runs accumulate comparable
fault-tolerance numbers over time.
"""

import json

from conftest import RESULTS_DIR, emit

from repro.chaos import run_chaos_study
from repro.harness import render_table

RATES = (0.0, 0.02, 0.05, 0.10)
GOODPUT_FLOOR = 0.90
# The whole sweep is ~1s on a 256-row Poisson system, so every bench
# scale runs the same acceptance-grade workload — shrinking it would
# change which faults land and invalidate the goodput floor.
N_REQUESTS = 32


def test_chaos_goodput_sweep(benchmark):
    res = run_chaos_study(rates=RATES, n_requests=N_REQUESTS)

    rows = []
    for rate in RATES:
        heal = res.row(rate, "self_healing")
        base = res.row(rate, "no_retry")
        rows.append([f"{rate:.0%}",
                     f"{heal.goodput:.3f}",
                     f"{base.goodput:.3f}",
                     f"{heal.n_retried}",
                     f"{heal.n_recovered}",
                     f"{heal.n_faults}",
                     f"{heal.n_detections}",
                     f"{1e3 * heal.makespan_s:.1f}"])
        # Every outcome is audited: self-healing may never do worse
        # than fail-fast on the identical fault schedule.
        assert heal.goodput >= base.goodput
        assert heal.goodput >= GOODPUT_FLOOR

    # The study must demonstrate actual healing, not a workload too
    # gentle to distinguish the modes.
    heal5 = res.row(0.05, "self_healing")
    base5 = res.row(0.05, "no_retry")
    assert heal5.goodput - base5.goodput >= 0.25

    benchmark(lambda: run_chaos_study(rates=(0.05,),
                                      n_requests=N_REQUESTS))

    table = render_table(
        ["fault rate", "goodput heal", "goodput base", "retried",
         "recovered", "faults", "detected", "makespan (ms)"],
        rows, title="Self-healing serving — audited goodput vs device "
                    "fault rate (seeded chaos, modeled clock)")
    emit("chaos_goodput.txt", table)
    (RESULTS_DIR / "BENCH_chaos.json").write_text(
        json.dumps(res.as_dict(), indent=2) + "\n", encoding="utf-8")
