"""Serving layer: continuous batching across slot capacities.

Not a paper figure — this bench starts the serving perf trajectory.
One fixed open-loop Poisson workload is served at slot capacities
B ∈ {1, 4, 8}, with continuous (rolling-admission) batching and with
the flush-style baseline at the same capacity, recording throughput,
modeled p50/p99 latency and sweep-weighted mean batch occupancy.  The
machine-readable summary lands in ``results/BENCH_serve.json`` so CI
runs accumulate comparable serving numbers over time.
"""

import json

from conftest import RESULTS_DIR, _scale, emit

from repro.harness import render_table
from repro.serve import BatchingWindow, LoadSpec, ServeScheduler, run_loadgen
from repro.sparse import stencil_poisson_2d

CAPACITIES = (1, 4, 8)
SEED = 12345


def _spec() -> LoadSpec:
    n = 24 if _scale() == "tiny" else 48
    return LoadSpec(n_requests=n, rate_rps=1500.0, seed=SEED)


def _serve(matrices, *, max_batch, continuous):
    sched = ServeScheduler(
        preconditioner="ilu0",
        window=BatchingWindow(max_wait_s=5e-4, max_batch=max_batch,
                              continuous=continuous))
    return run_loadgen(sched, matrices, _spec())


def test_serve_capacity_sweep(benchmark):
    side = 12 if _scale() == "tiny" else 16
    matrices = [stencil_poisson_2d(side)]
    rows, summary = [], {"seed": SEED, "n_requests": _spec().n_requests,
                         "rate_rps": _spec().rate_rps, "capacities": {}}
    for cap in CAPACITIES:
        cont = _serve(matrices, max_batch=cap, continuous=True)
        flush = _serve(matrices, max_batch=cap, continuous=False)
        assert cont.n_completed == _spec().n_requests
        entry = {}
        for label, rep in (("continuous", cont), ("flush", flush)):
            entry[label] = {
                "throughput_rps": rep.throughput_rps,
                "p50_modeled_s": rep.latency_percentile(50),
                "p99_modeled_s": rep.latency_percentile(99),
                "mean_occupancy": rep.mean_occupancy,
            }
        summary["capacities"][f"B={cap}"] = entry
        rows.append([f"{cap}",
                     f"{cont.throughput_rps:.0f}",
                     f"{flush.throughput_rps:.0f}",
                     f"{1e3 * cont.latency_percentile(50):.2f}",
                     f"{1e3 * cont.latency_percentile(99):.2f}",
                     f"{1e3 * flush.latency_percentile(99):.2f}",
                     f"{cont.mean_occupancy:.3f}",
                     f"{flush.mean_occupancy:.3f}"])
        # Beyond one slot, rolling admission must not lose to
        # flush-style batching at the same capacity.
        if cap > 1:
            assert cont.latency_percentile(99) <= \
                flush.latency_percentile(99)

    benchmark(lambda: _serve(matrices, max_batch=4, continuous=True))

    table = render_table(
        ["B", "thrpt cont", "thrpt flush", "p50 cont (ms)",
         "p99 cont (ms)", "p99 flush (ms)", "occ cont", "occ flush"],
        rows, title="Serving — continuous vs flush batching across slot "
                    "capacities (open-loop Poisson, modeled clock)")
    emit("serve_capacity.txt", table)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8")
