#!/usr/bin/env python
"""Quickstart: solve an SPD system with SPCG and compare against PCG.

Builds a thermal-style SPD matrix with weak material interfaces (the
structure sparsification exploits), solves it with both the baseline
PCG-ILU(0) and the paper's SPCG-ILU(0), and prints what Algorithm 2
decided along with the modeled A100 timings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import A100, ILU0Preconditioner, pcg, spcg, wavefront_count
from repro.datasets import generate
from repro.machine import iteration_cost

def main() -> None:
    # An SPD matrix from the synthetic suite (thermal conduction with
    # smooth coefficient field and weak interfaces).
    a = generate("thermal", 2500, seed=42)
    x_true = np.ones(a.n_rows)
    b = a.matvec(x_true)
    print(f"matrix: n={a.n_rows}, nnz={a.nnz}, "
          f"wavefronts={wavefront_count(a)}")

    # --- baseline: PCG with ILU(0) on the original matrix -------------
    m0 = ILU0Preconditioner(a)
    base = pcg(a, b, m0)
    print(f"\nPCG-ILU(0):  converged={base.converged} "
          f"iters={base.n_iters} residual={base.final_residual:.2e}")

    # --- SPCG: wavefront-aware sparsification + ILU(0) -----------------
    res = spcg(a, b, preconditioner="ilu0")
    print(f"SPCG-ILU(0): converged={res.converged} "
          f"iters={res.solve.n_iters} residual={res.solve.final_residual:.2e}")
    print(f"  chosen sparsification ratio: {res.chosen_ratio:g}%")
    for cand in res.decision.candidates:
        print(f"   candidate {cand.ratio_percent:>4g}%: "
              f"indicator={cand.indicator:.3g} "
              f"safe={cand.passed_convergence} "
              f"wavefront_reduction="
              f"{cand.wavefront_reduction if cand.wavefront_reduction is not None else '—'}")

    # --- modeled per-iteration cost on an A100 -------------------------
    t0 = iteration_cost(A100, a, m0).total
    t1 = iteration_cost(A100, a, res.preconditioner).total
    print(f"\nmodeled A100 per-iteration time: "
          f"{t0 * 1e6:.1f} µs → {t1 * 1e6:.1f} µs "
          f"(speedup ×{t0 / t1:.2f})")

    err = np.abs(res.x - x_true).max()
    print(f"solution max error vs ground truth: {err:.2e}")


if __name__ == "__main__":
    main()
