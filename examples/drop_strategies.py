#!/usr/bin/env python
"""Drop-before vs drop-during: SPCG against ILUT on the same system.

The related-work families differ in *when* they drop: SPCG sparsifies
the matrix **before** factorization (so the factors inherit the shorter
dependence chains), while ILUT drops small entries **during**
factorization (better numerics per nonzero, but the wavefront structure
of the original pattern survives wherever the retained entries sit).

This example runs four solver configurations on one thermal system and
compares iterations, wavefronts, and modeled A100 per-iteration time:

    PCG-ILU(0)  |  SPCG-ILU(0)  |  PCG-ILUT  |  SPCG-ILUT

(the last composes both: sparsify first, then factor with thresholds).

Run:  python examples/drop_strategies.py
"""

import numpy as np

from repro import StoppingCriterion, pcg
from repro.core import wavefront_aware_sparsify
from repro.datasets import generate
from repro.machine import A100, iteration_cost
from repro.precond import ILU0Preconditioner, ILUTPreconditioner


def main() -> None:
    a = generate("thermal", 2025, seed=101)
    b = a.matvec(np.ones(a.n_rows))
    crit = StoppingCriterion(rtol=1e-10, atol=0.0, max_iters=1000)
    decision = wavefront_aware_sparsify(a)
    a_hat = decision.a_hat
    print(f"matrix n={a.n_rows} nnz={a.nnz}; Algorithm 2 chose "
          f"t={decision.chosen_ratio:g}%\n")

    configs = [
        ("PCG-ILU(0)", a, lambda m: ILU0Preconditioner(m)),
        ("SPCG-ILU(0)", a_hat,
         lambda m: ILU0Preconditioner(m, raise_on_zero_pivot=False)),
        ("PCG-ILUT", a, lambda m: ILUTPreconditioner(m, p=6,
                                                     drop_tol=5e-3)),
        ("SPCG-ILUT", a_hat, lambda m: ILUTPreconditioner(m, p=6,
                                                          drop_tol=5e-3)),
    ]
    print(f"{'variant':<12} {'iters':>6} {'wavefronts':>11} "
          f"{'nnz(M)':>8} {'iter time':>10}")
    for label, mat, factory in configs:
        m = factory(mat)
        res = pcg(a, b, m, criterion=crit)
        t = iteration_cost(A100, a, m).total
        wf = sum(m.apply_levels())
        print(f"{label:<12} {res.n_iters:>6} {wf:>11} "
              f"{m.apply_nnz():>8} {t * 1e6:>8.1f}µs"
              + ("" if res.converged else "  (no convergence)"))

    print("\nTakeaway: ILUT reduces *work* per application; only the "
          "matrix-level sparsification of SPCG also removes the "
          "*synchronization* (wavefront) structure — and the two "
          "compose.")


if __name__ == "__main__":
    main()
