#!/usr/bin/env python
"""Run the full SPCG pipeline on a real SuiteSparse Matrix Market file.

The built-in dataset is a synthetic stand-in; this script is the bridge
to the paper's actual corpus.  Download any SPD matrix from
https://sparse.tamu.edu (e.g. Dubcova1, ecology2, thermal1, Pres_Poisson),
then:

    python examples/suitesparse_runner.py path/to/matrix.mtx [--iluk K]

Prints the Algorithm 2 decision, iteration counts, wavefront counts and
modeled per-iteration/end-to-end A100 times for PCG vs SPCG.
"""

import argparse
import sys

from repro.harness import run_experiment
from repro.sparse import is_symmetric, read_matrix_market, symmetrize


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mtx", help="Matrix Market file (.mtx or .mtx.gz)")
    ap.add_argument("--iluk", type=int, default=None, metavar="K",
                    help="use ILU(K) with this fill level instead of ILU(0)")
    ap.add_argument("--tau", type=float, default=1.0,
                    help="convergence threshold τ (default 1.0)")
    ap.add_argument("--omega", type=float, default=10.0,
                    help="wavefront threshold ω in percent (default 10)")
    args = ap.parse_args(argv)

    a = read_matrix_market(args.mtx)
    if a.shape[0] != a.shape[1]:
        print(f"error: matrix is not square: {a.shape}", file=sys.stderr)
        return 2
    if not is_symmetric(a, tol=1e-12):
        print("warning: matrix not symmetric — symmetrizing (A+Aᵀ)/2")
        a = symmetrize(a)

    kind = "iluk" if args.iluk is not None else "ilu0"
    res = run_experiment(a, name=args.mtx, precond=kind, k=args.iluk,
                         tau=args.tau, omega=args.omega)

    print(f"matrix: n={a.n_rows} nnz={a.nnz}")
    print(f"preconditioner: {kind}"
          + (f" (K={res.k})" if kind == "iluk" else ""))
    print(f"Algorithm 2 decision: ratio {res.spcg.ratio_percent:g}% "
          f"(fallback: {res.decision.fallback or 'none'})")
    b, s = res.baseline, res.spcg
    print(f"{'':14} {'PCG':>14} {'SPCG':>14}")
    print(f"{'converged':14} {str(b.converged):>14} {str(s.converged):>14}")
    print(f"{'iterations':14} {b.n_iters:>14} {s.n_iters:>14}")
    print(f"{'wavefronts':14} {b.total_wavefronts:>14} "
          f"{s.total_wavefronts:>14}")
    print(f"{'iter time':14} {b.per_iteration_seconds * 1e6:>12.1f}µs "
          f"{s.per_iteration_seconds * 1e6:>12.1f}µs")
    print(f"per-iteration speedup: ×{res.per_iteration_speedup:.2f}")
    if b.converged and s.converged:
        print(f"end-to-end speedup:    ×{res.end_to_end_speedup:.2f}")
    else:
        print("end-to-end speedup:    n/a (a variant did not converge)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
