#!/usr/bin/env python
"""DC operating-point analysis of a resistor network with SPCG.

Modified nodal analysis of a large conductance network reduces to
``G v = i`` with ``G`` a diagonally dominant SPD conductance Laplacian.
Circuit matrices carry conductances spanning many decades (the paper's
*circuit simulation* category shows some of the strongest gains, Fig. 9):
the tiny parasitic conductances are exactly what magnitude-based
sparsification removes without disturbing the solution.

Run:  python examples/circuit_dc_analysis.py
"""

import numpy as np

from repro import pcg, spcg, ILU0Preconditioner, StoppingCriterion
from repro.datasets import generate
from repro.machine import A100, EPYC_7413, iteration_cost


def main() -> None:
    # Conductance network: log-uniform conductances over 6 decades,
    # ground leaks on 5 % of the nodes keep G nonsingular.
    g = generate("circuit", 4000, seed=11)
    n = g.n_rows
    rng = np.random.default_rng(1)

    # Current injections: a handful of sources and matched sinks.
    i_vec = np.zeros(n)
    src = rng.choice(n, size=8, replace=False)
    snk = rng.choice(np.setdiff1d(np.arange(n), src), size=8, replace=False)
    i_vec[src] = +1e-3
    i_vec[snk] = -1e-3

    crit = StoppingCriterion(rtol=1e-10, atol=0.0, max_iters=1000)

    base = pcg(g, i_vec, ILU0Preconditioner(g), criterion=crit)
    res = spcg(g, i_vec, preconditioner="ilu0", criterion=crit)

    print(f"network: n={n}, nnz={g.nnz}")
    print(f"PCG-ILU(0):  {base.n_iters} iterations, "
          f"residual {base.final_residual:.2e}")
    print(f"SPCG-ILU(0): {res.solve.n_iters} iterations, "
          f"residual {res.solve.final_residual:.2e}, "
          f"ratio {res.chosen_ratio:g}%")

    # Node-voltage agreement between the two solutions.
    scale = np.abs(base.x).max()
    drift = np.abs(base.x - res.x).max() / scale
    print(f"max node-voltage discrepancy: {drift:.2e} (relative)")

    # Power dissipated must match the injected power (sanity physics).
    for name, v in (("PCG", base.x), ("SPCG", res.x)):
        p_in = float(i_vec @ v)
        p_diss = float(v @ g.matvec(v))
        print(f"{name}: injected {p_in:.6e} W vs dissipated "
              f"{p_diss:.6e} W")

    # Where does the speedup come from on each architecture?
    m0 = ILU0Preconditioner(g)
    for dev in (A100, EPYC_7413):
        c0 = iteration_cost(dev, g, m0)
        c1 = iteration_cost(dev, g, res.preconditioner)
        print(f"{dev.name}: per-iteration {c0.total * 1e6:8.1f} µs → "
              f"{c1.total * 1e6:8.1f} µs  "
              f"(triangular-solve share {100 * c0.precond / c0.total:.0f}%)")


if __name__ == "__main__":
    main()
