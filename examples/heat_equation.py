#!/usr/bin/env python
"""Implicit heat-equation time stepping on a :class:`SolveSession`.

Backward-Euler discretization of ``u_t = ∇·(κ∇u)`` on a 2-D plate with a
high-contrast conductivity field: each step solves
``(M + Δt·K) u_{n+1} = M u_n``, an SPD system whose triangular-solve
dependence structure contains the weak interfaces sparsification cuts.

The time loop hands every step to a :class:`repro.streams.SolveSession`,
which owns all the amortization the paper's introduction motivates:
Algorithm 2 + factorization run **once** (the staleness detector sees an
unchanged matrix and reuses the factor), each step warm-starts from the
previous solution, a recycled Ritz basis deflates the slow modes, and
every step's true residual is re-verified.  A second session with every
lever forced off is the cold per-step baseline.

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro import StoppingCriterion
from repro.datasets.generators import _grid_edges_2d, _spd_from_edges
from repro.machine import A100
from repro.sparse import CSRMatrix, add, diags
from repro.streams import SolveSession, StalenessConfig


def build_heat_operator(side: int, dt: float, seed: int = 0) -> CSRMatrix:
    """``M + Δt·K`` for a plate with a two-phase conductivity field."""
    rng = np.random.default_rng(seed)
    n = side * side
    xs, ys = np.meshgrid(np.linspace(0, 1, side), np.linspace(0, 1, side),
                         indexing="ij")
    # Insulating seams along two diagonal interfaces (weak couplings).
    kappa = np.where(rng.random((side, side)) < 0.25, 20.0, 1.0).ravel()
    i, j, _ = _grid_edges_2d(side, side)
    w = 0.5 * (kappa[i] + kappa[j]) * rng.lognormal(0, 0.5, size=i.size)
    s = np.arange(n) // side + np.arange(n) % side
    for c in (0.45, 0.75):
        crossing = (s[i] < c * s.max()) != (s[j] < c * s.max())
        w = np.where(crossing, 1e-4 * w, w)
    k_matrix = _spd_from_edges(i, j, w, n, dominance=1e-6)
    mass = diags({0: np.full(n, 1.0 / dt)}, n)
    return add(mass, k_matrix)


def run_stream(session: SolveSession, a: CSRMatrix, u0: np.ndarray,
               dt: float, n_steps: int) -> np.ndarray:
    """March ``n_steps`` backward-Euler steps through *session*."""
    u = u0
    for step in range(1, n_steps + 1):
        rec = session.step(a, u / dt, tag=f"t{step}")
        assert rec.result.converged and rec.verified
        u = rec.result.x
    return u


def main() -> None:
    side, dt, n_steps = 48, 0.05, 25
    a = build_heat_operator(side, dt)
    n = a.n_rows
    print(f"heat operator: n={n}, nnz={a.nnz}")

    # Initial condition: hot spot in the center.
    u0 = np.zeros(n)
    u0[(side // 2) * side + side // 2] = 100.0

    crit = StoppingCriterion(rtol=1e-10, atol=0.0, max_iters=1000)
    warm = SolveSession(preconditioner="ilu0", criterion=crit,
                        device=A100, warm_start=True, recycle=8)
    cold = SolveSession(preconditioner="ilu0", criterion=crit,
                        device=A100, warm_start=False, recycle=0,
                        staleness=StalenessConfig(force="refactor"))
    u_warm = run_stream(warm, a, u0, dt, n_steps)
    u_cold = run_stream(cold, a, u0, dt, n_steps)

    drift = np.abs(u_cold - u_warm).max() / np.abs(u_cold).max()
    print()
    print(warm.report.amortization_table())
    wr, cr = warm.report, cold.report
    print(f"\n{n_steps} implicit steps on the {A100.name} model:")
    print(f"  cold per-step solves: {cr.total_iterations} iterations, "
          f"{cr.modeled_seconds * 1e3:.2f} ms modeled")
    print(f"  session (warm+reuse+recycle): {wr.total_iterations} "
          f"iterations, {wr.modeled_seconds * 1e3:.2f} ms modeled")
    print(f"  end-state relative drift between the two solutions: "
          f"{drift:.2e}")
    print(f"  amortized end-to-end speedup: "
          f"×{cr.modeled_seconds / wr.modeled_seconds:.2f}")


if __name__ == "__main__":
    main()
