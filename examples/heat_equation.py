#!/usr/bin/env python
"""Implicit heat-equation time stepping accelerated by SPCG.

Backward-Euler discretization of ``u_t = ∇·(κ∇u)`` on a 2-D plate with a
high-contrast conductivity field: each step solves
``(M + Δt·K) u_{n+1} = M u_n``, an SPD system whose triangular-solve
dependence structure contains the weak interfaces sparsification cuts.

The preconditioner (and Algorithm 2's decision) is computed **once**,
then reused across all time steps — the amortization regime where SPCG's
per-iteration gains compound, which is exactly the scientific-simulation
use case the paper's introduction motivates.

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro import pcg, ILU0Preconditioner, StoppingCriterion
from repro.core import wavefront_aware_sparsify
from repro.datasets.generators import _grid_edges_2d, _spd_from_edges
from repro.machine import A100, iteration_cost
from repro.sparse import CSRMatrix, add, diags


def build_heat_operator(side: int, dt: float, seed: int = 0) -> CSRMatrix:
    """``M + Δt·K`` for a plate with a two-phase conductivity field."""
    rng = np.random.default_rng(seed)
    n = side * side
    xs, ys = np.meshgrid(np.linspace(0, 1, side), np.linspace(0, 1, side),
                         indexing="ij")
    # Insulating seams along two diagonal interfaces (weak couplings).
    kappa = np.where(rng.random((side, side)) < 0.25, 20.0, 1.0).ravel()
    i, j, _ = _grid_edges_2d(side, side)
    w = 0.5 * (kappa[i] + kappa[j]) * rng.lognormal(0, 0.5, size=i.size)
    s = np.arange(n) // side + np.arange(n) % side
    for c in (0.45, 0.75):
        crossing = (s[i] < c * s.max()) != (s[j] < c * s.max())
        w = np.where(crossing, 1e-4 * w, w)
    k_matrix = _spd_from_edges(i, j, w, n, dominance=1e-6)
    mass = diags({0: np.full(n, 1.0 / dt)}, n)
    return add(mass, k_matrix)


def main() -> None:
    side, dt, n_steps = 48, 0.05, 25
    a = build_heat_operator(side, dt)
    n = a.n_rows
    print(f"heat operator: n={n}, nnz={a.nnz}")

    # One-time setup: Algorithm 2 + factorization, reused every step.
    decision = wavefront_aware_sparsify(a)
    print(f"Algorithm 2 chose t={decision.chosen_ratio:g}% "
          f"(wavefronts {decision.w_original} → "
          f"{sum(ILU0Preconditioner(decision.a_hat).apply_levels()) // 2})")
    m_spcg = ILU0Preconditioner(decision.a_hat, raise_on_zero_pivot=False)
    m_base = ILU0Preconditioner(a)

    # Initial condition: hot spot in the center.
    u = np.zeros(n)
    u[(side // 2) * side + side // 2] = 100.0

    crit = StoppingCriterion(rtol=1e-10, atol=0.0, max_iters=1000)
    total_iters_spcg = 0
    total_iters_base = 0
    u_base = u.copy()
    u_spcg = u.copy()
    for step in range(n_steps):
        rhs_b = u_base / dt
        rhs_s = u_spcg / dt
        rb = pcg(a, rhs_b, m_base, criterion=crit, x0=u_base)
        rs = pcg(a, rhs_s, m_spcg, criterion=crit, x0=u_spcg)
        assert rb.converged and rs.converged
        u_base, u_spcg = rb.x, rs.x
        total_iters_base += rb.n_iters
        total_iters_spcg += rs.n_iters

    drift = np.abs(u_base - u_spcg).max() / np.abs(u_base).max()
    t_base = iteration_cost(A100, a, m_base).total
    t_spcg = iteration_cost(A100, a, m_spcg).total
    print(f"\n{n_steps} implicit steps:")
    print(f"  PCG  iterations: {total_iters_base}  "
          f"(modeled A100 solve time {total_iters_base * t_base * 1e3:.2f} ms)")
    print(f"  SPCG iterations: {total_iters_spcg}  "
          f"(modeled A100 solve time {total_iters_spcg * t_spcg * 1e3:.2f} ms)")
    print(f"  end-state relative drift between the two solutions: "
          f"{drift:.2e}")
    speedup = (total_iters_base * t_base) / (total_iters_spcg * t_spcg)
    print(f"  amortized solve-phase speedup: ×{speedup:.2f}")


if __name__ == "__main__":
    main()
