#!/usr/bin/env python
"""Cross-architecture study: the same SPCG run priced on A100, V100, EPYC.

Reproduces the Section 4.5 portability narrative on one matrix: the
speedup is a property of the *schedule* (fewer wavefronts), and each
device converts it to time according to its launch/synchronization costs
and parallel width.  Also prints the Section 5.3-style modeled profiler
metrics (DRAM/compute utilization before and after sparsification).

Run:  python examples/portability_study.py
"""

from repro import ILU0Preconditioner
from repro.core import wavefront_aware_sparsify
from repro.datasets import generate
from repro.machine import (A100, EPYC_7413, V100, KernelProfiler,
                           iteration_cost)


def main() -> None:
    a = generate("structural", 3025, seed=9)
    decision = wavefront_aware_sparsify(a)
    m_base = ILU0Preconditioner(a)
    m_spcg = ILU0Preconditioner(decision.a_hat, raise_on_zero_pivot=False)

    wf_base = sum(m_base.apply_levels())
    wf_spcg = sum(m_spcg.apply_levels())
    print(f"matrix n={a.n_rows} nnz={a.nnz}")
    print(f"Algorithm 2: ratio {decision.chosen_ratio:g}%, "
          f"wavefronts {wf_base} → {wf_spcg}")
    print()
    print(f"{'device':<10} {'PCG iter':>12} {'SPCG iter':>12} "
          f"{'speedup':>8}")
    for dev in (A100, V100, EPYC_7413):
        t0 = iteration_cost(dev, a, m_base).total
        t1 = iteration_cost(dev, a, m_spcg).total
        print(f"{dev.name:<10} {t0 * 1e6:>10.1f}µs {t1 * 1e6:>10.1f}µs "
              f"{t0 / t1:>7.2f}×")

    print("\nmodeled profiler (Section 5.3 analogue), A100:")
    prof = KernelProfiler(A100)
    for label, m in (("PCG-ILU(0) ", m_base), ("SPCG-ILU(0)", m_spcg)):
        u = prof.iteration_utilization(a, m)
        print(f"  {label}: DRAM {u.dram_util_percent:6.2f}%   "
              f"compute {u.compute_util_percent:6.2f}%   "
              f"bound: {u.bound}")


if __name__ == "__main__":
    main()
