"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that offline environments lacking the ``wheel`` package (where PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``) can still
do ``python setup.py develop`` or a legacy ``pip install -e .``.
"""

from setuptools import setup

setup()
